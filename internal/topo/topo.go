// Package topo constructs the bidirectional multistage interconnection
// network (BMIN) of Figure 3: a dance-hall butterfly with processor/
// cache interfaces at the bottom rank and memory interfaces at the top
// rank. Requests travel the forward (upward) path from a processor to
// a home memory; replies and coherence requests travel the backward
// (downward) path. Because a (processor, memory) pair always traverses
// the same switches in both directions, a directory hierarchy can be
// embedded in the switches — the property the switch directory
// framework depends on.
//
// The network is built from bidirectional crossbar switches with Radix
// ports per side (a Radix=4 switch is the paper's "8x8 crossbar": 8
// input links and 8 output links, used as 4 bidirectional down ports
// plus 4 bidirectional up ports). The paper's machine is the 2-stage
// instance; this package generalizes it to k-ary s-stage butterflies
// with s = max(2, ceil(log_radix(nodes))), so 256- and 1024-node
// machines (3 and 4 stages of 8-port switches) are representable. When
// radix^s exceeds the node count the spare fan-out becomes bundled
// parallel links, exactly as in the 2-stage layout.
//
// Routing is arithmetic: a switch index is a mixed-radix number of
// s-1 digits, and the move between rank i and rank i+1 replaces digit
// i. A route is therefore computed in O(1) per hop from the endpoint
// indices alone — no precomputed path tables, so route state no longer
// grows as nodes². Hot paths are memoized by the bounded RouteCache
// (routecache.go), which callers in the timed network own per shard.
package topo

import "fmt"

// Dir is a traversal direction through the BMIN.
type Dir uint8

const (
	// Up is the forward direction, toward the memory rank.
	Up Dir = iota
	// Down is the backward direction, toward the processor rank.
	Down
)

func (d Dir) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// SwitchID names a switch: Stage 0 is the leaf (processor-side) rank,
// Stage Stages-1 the top (memory-side) rank.
type SwitchID struct {
	Stage int
	Index int
}

func (s SwitchID) String() string { return fmt.Sprintf("S%d.%d", s.Stage, s.Index) }

// Port is a switch-local bidirectional port number. Ports [0, Radix)
// face down (toward processors); ports [Radix, 2*Radix) face up
// (toward memories).
type Port int

// Hop is one switch traversal: the message enters sw on port In and
// leaves on port Out.
type Hop struct {
	Sw  SwitchID
	In  Port
	Out Port
}

// T is a concrete s-stage BMIN. It is immutable after New: every
// route is a pure function of the endpoints, so a single T may be
// shared by concurrent shards without synchronization.
type T struct {
	// Nodes is the number of CC-NUMA nodes (processor+memory pairs).
	Nodes int
	// Radix is the number of bidirectional ports per switch side.
	Radix int
	// Stages is the rank count s: 2 for the paper's machine, and in
	// general max(2, ceil(log_radix(nodes))).
	Stages int
	// Bundle is the total parallel-path multiplicity between a
	// (processor, memory) pair: Radix^Stages / Nodes. For the 2-stage
	// machine this is the per-(leaf, top) link bundle width.
	Bundle int
	// Leaves and Tops are the per-rank switch counts (Nodes / Radix).
	// Every rank has the same width in a butterfly; the two names
	// survive from the 2-stage layout because the leaf (processor) and
	// top (memory) ranks are the ones with endpoint-visible roles.
	Leaves, Tops int

	// fan[i] is the digit base of switch-index digit i (the fan-out
	// multiplicity of the move between ranks i and i+1), and lanes[i]
	// = Radix/fan[i] is that move's bundled-link lane count. stride[i]
	// is the positional weight of digit i, so a switch index w has
	// digit_i(w) = (w/stride[i]) % fan[i]. prod(fan) = Leaves and
	// prod(lanes) = Bundle.
	fan, lanes, stride []int
	// selPeriod is Radix^(Stages-1): the number of distinct turnaround
	// paths between two leaves, and the modulus applied to Turnaround's
	// sel argument. Equals Tops*Bundle on the 2-stage machine.
	selPeriod int
}

// stagesFor derives the rank count: the smallest s with radix^s >=
// nodes, floored at the paper's 2.
func stagesFor(nodes, radix int) int {
	s, reach := 1, radix
	for reach < nodes {
		reach *= radix
		s++
	}
	if s < 2 {
		s = 2
	}
	return s
}

// factorable reports whether an s-stage butterfly exists for the
// geometry: nodes divisible by radix and switches-per-rank dividing
// radix^(s-1) (so every digit base divides the radix and the total
// bundle width is a positive integer).
func factorable(nodes, radix int) bool {
	if nodes <= 0 || radix <= 0 || nodes%radix != 0 {
		return false
	}
	s := stagesFor(nodes, radix)
	perRank := nodes / radix
	pow := 1
	for i := 0; i < s-1; i++ {
		pow *= radix
	}
	return pow%perRank == 0
}

// New builds an s-stage BMIN for nodes endpoints using switches of the
// given radix, with s derived from the geometry (2 stages up to
// radix² nodes). It returns an error when no butterfly of that shape
// exists, naming the derived stage count and the nearest valid
// geometries.
func New(nodes, radix int) (*T, error) {
	if nodes <= 0 || radix <= 0 {
		return nil, fmt.Errorf("topo: nodes (%d) and radix (%d) must be positive", nodes, radix)
	}
	s := stagesFor(nodes, radix)
	if nodes%radix != 0 {
		return nil, fmt.Errorf("topo: nodes (%d) not divisible by radix (%d) for a %d-stage butterfly; nearest valid: %s",
			nodes, radix, s, nearestValid(nodes, radix))
	}
	perRank := nodes / radix
	pow := 1
	for i := 0; i < s-1; i++ {
		pow *= radix
	}
	if pow%perRank != 0 {
		return nil, fmt.Errorf("topo: %d switches per rank do not divide radix^(stages-1)=%d (%d nodes, radix %d, %d stages); nearest valid: %s",
			perRank, pow, nodes, radix, s, nearestValid(nodes, radix))
	}
	t := &T{
		Nodes:  nodes,
		Radix:  radix,
		Stages: s,
		Bundle: pow * radix / nodes,
		Leaves: perRank,
		Tops:   perRank,
		fan:    make([]int, s-1),
		lanes:  make([]int, s-1),
		stride: make([]int, s-1),
	}
	// Factor the per-rank width into per-move digit bases by greedy
	// gcd. Each base divides the radix, and the factorable check above
	// guarantees the remainder reaches 1 within s-1 moves.
	rem := perRank
	stride := 1
	for i := 0; i < s-1; i++ {
		g := gcd(radix, rem)
		t.fan[i] = g
		t.lanes[i] = radix / g
		t.stride[i] = stride
		stride *= g
		rem /= g
	}
	if rem != 1 {
		// Unreachable given factorable's divisibility argument; kept as
		// a construction-time invariant.
		return nil, fmt.Errorf("topo: internal: rank width %d not factored over %d moves of radix %d", perRank, s-1, radix)
	}
	t.selPeriod = pow
	return t, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// nearestValid suggests valid geometries close to a rejected request:
// the nearest valid node counts for the requested radix, and any
// radices in [2, nodes] that accept the requested node count.
func nearestValid(nodes, radix int) string {
	var below, above int
	for n := nodes - 1; n >= radix; n-- {
		if factorable(n, radix) {
			below = n
			break
		}
	}
	for n := nodes + 1; n <= nodes*radix; n++ {
		if factorable(n, radix) {
			above = n
			break
		}
	}
	var radices []int
	for r := 2; r <= nodes && len(radices) < 3; r++ {
		if r != radix && factorable(nodes, r) {
			radices = append(radices, r)
		}
	}
	out := ""
	if below > 0 {
		out += fmt.Sprintf("(%d nodes, radix %d)", below, radix)
	}
	if above > 0 {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("(%d nodes, radix %d)", above, radix)
	}
	for _, r := range radices {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("(%d nodes, radix %d)", nodes, r)
	}
	if out == "" {
		return "none"
	}
	return out
}

// MustNew is New, panicking on error; for tests and tables.
func MustNew(nodes, radix int) *T {
	t, err := New(nodes, radix)
	if err != nil {
		panic(err)
	}
	return t
}

// Precompute is a no-op kept for callers of the pre-arithmetic API.
// Routes are computed in O(1) per hop from the endpoint indices, T is
// immutable, and hot-path memoization lives in per-shard RouteCaches —
// there is no shared table left to build, and nothing to race on.
func (t *T) Precompute() {}

// NumSwitches reports the total switch count across all stages.
func (t *T) NumSwitches() int { return t.Stages * t.Leaves }

// SwitchOrdinal flattens a SwitchID into [0, NumSwitches) in
// stage-major order: rank 0 (leaves) first, then each rank upward.
func (t *T) SwitchOrdinal(s SwitchID) int {
	return s.Stage*t.Leaves + s.Index
}

// OrdinalSwitch is SwitchOrdinal's inverse.
func (t *T) OrdinalSwitch(ord int) SwitchID {
	return SwitchID{Stage: ord / t.Leaves, Index: ord % t.Leaves}
}

// LeafOf returns the leaf switch serving processor p.
func (t *T) LeafOf(p int) SwitchID { return SwitchID{0, p / t.Radix} }

// TopOf returns the top-rank switch serving memory m.
func (t *T) TopOf(m int) SwitchID { return SwitchID{t.Stages - 1, m / t.Radix} }

// digit extracts digit i of switch index w.
func (t *T) digit(w, i int) int { return (w / t.stride[i]) % t.fan[i] }

// setDigit returns w with digit i replaced by d.
func (t *T) setDigit(w, i, d int) int {
	return w + (d-t.digit(w, i))*t.stride[i]
}

// upPort is the rank-i switch output port reaching the rank-(i+1)
// switch whose digit i is d, on bundle lane lane.
func (t *T) upPort(i, d, lane int) Port { return Port(t.Radix + d*t.lanes[i] + lane) }

// downPort is the rank-(i+1) switch output port reaching the rank-i
// switch whose digit i is d, on bundle lane lane.
func (t *T) downPort(i, d, lane int) Port { return Port(d*t.lanes[i] + lane) }

// AppendForward appends the forward (processor-to-memory) hop sequence
// to buf and returns it. The route is exactly Stages hops: each move j
// rewrites switch-index digit j to the destination top's, on bundle
// lane (proc+mem) mod lanes[j] — the deterministic spread that keeps
// every (proc, mem) pair on a fixed lane so point-to-point order is
// preserved.
func (t *T) AppendForward(buf []Hop, proc, mem int) []Hop {
	t.checkNode(proc)
	t.checkNode(mem)
	w, top := proc/t.Radix, mem/t.Radix
	in := Port(proc % t.Radix)
	for j := 0; j < t.Stages-1; j++ {
		c := t.digit(top, j)
		lane := (proc + mem) % t.lanes[j]
		buf = append(buf, Hop{Sw: SwitchID{j, w}, In: in, Out: t.upPort(j, c, lane)})
		in = t.downPort(j, t.digit(w, j), lane)
		w = t.setDigit(w, j, c)
	}
	return append(buf, Hop{Sw: SwitchID{t.Stages - 1, w}, In: in, Out: Port(t.Radix + mem%t.Radix)})
}

// Forward returns the hop sequence for a processor-to-memory message
// (the forward path: ReadReq, WriteReq, WriteBack, CopyBack, InvalAck).
// Callers on hot paths should memoize through a RouteCache; the slice
// a RouteCache returns is shared, so treat all returned routes as
// immutable (xbar's fault route splicing copies before mutating).
func (t *T) Forward(proc, mem int) []Hop {
	return t.AppendForward(make([]Hop, 0, t.Stages), proc, mem)
}

// AppendBackward appends the backward (memory-to-processor) hop
// sequence to buf: the exact reverse of AppendForward(proc, mem), so a
// request and its reply see the same switches — the path-overlap
// property the switch directories depend on.
func (t *T) AppendBackward(buf []Hop, mem, proc int) []Hop {
	start := len(buf)
	buf = t.AppendForward(buf, proc, mem)
	fwd := buf[start:]
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	for i := range fwd {
		fwd[i].In, fwd[i].Out = fwd[i].Out, fwd[i].In
	}
	return buf
}

// Backward returns the hop sequence for a memory-to-processor message
// (the backward path: replies, CtoCReq, Inval, Retry, WBAck, Nack).
func (t *T) Backward(mem, proc int) []Hop {
	return t.AppendBackward(make([]Hop, 0, t.Stages), mem, proc)
}

// SelPeriod is the number of distinct turnaround path selectors:
// Radix^(Stages-1), the modulus applied to Turnaround's sel.
func (t *T) SelPeriod() int { return t.selPeriod }

// AppendTurnaround appends the processor-to-processor (CtoCReply) hop
// sequence to buf: up from the source's leaf to the lowest rank whose
// subtree contains both leaves (higher when sel disagrees there), then
// down to the destination's leaf. sel picks the pivot's free digits
// and the bundle lanes deterministically (callers pass the block's
// home node so the reply shares the transaction's tree). If src and
// dst share a leaf switch the route is a single leaf-switch hop.
func (t *T) AppendTurnaround(buf []Hop, src, dst, sel int) []Hop {
	t.checkNode(src)
	t.checkNode(dst)
	sl, dl := src/t.Radix, dst/t.Radix
	if sl == dl {
		return append(buf, Hop{Sw: SwitchID{0, sl}, In: Port(src % t.Radix), Out: Port(dst % t.Radix)})
	}
	s := sel % t.selPeriod
	if s < 0 {
		s += t.selPeriod
	}
	// The pivot rank is just above the highest differing digit: the
	// lowest rank from which a pure down path can still set every
	// mismatched digit to the destination leaf's.
	pivot := 0
	for j := 0; j < t.Stages-1; j++ {
		if t.digit(sl, j) != t.digit(dl, j) {
			pivot = j + 1
		}
	}
	// Ascend: free digits below the pivot come from sel, so a
	// transaction's turnaround shares its home subtree.
	w := sl
	in := Port(src % t.Radix)
	for j := 0; j < pivot; j++ {
		f := t.digit(s, j)
		lane := (src + s) % t.lanes[j]
		buf = append(buf, Hop{Sw: SwitchID{j, w}, In: in, Out: t.upPort(j, f, lane)})
		in = t.downPort(j, t.digit(w, j), lane)
		w = t.setDigit(w, j, f)
	}
	// Descend, rewriting each digit to the destination leaf's.
	for j := pivot - 1; j >= 0; j-- {
		d := t.digit(dl, j)
		lane := (dst + s) % t.lanes[j]
		buf = append(buf, Hop{Sw: SwitchID{j + 1, w}, In: in, Out: t.downPort(j, d, lane)})
		in = t.upPort(j, t.digit(w, j), lane)
		w = t.setDigit(w, j, d)
	}
	return append(buf, Hop{Sw: SwitchID{0, w}, In: in, Out: Port(dst % t.Radix)})
}

// Turnaround returns the processor-to-processor hop sequence; the
// route depends on sel only through sel mod SelPeriod().
func (t *T) Turnaround(src, dst, sel int) []Hop {
	return t.AppendTurnaround(make([]Hop, 0, 2*t.Stages-1), src, dst, sel)
}

// RouteFrom computes a route for a message created inside switch sw
// (a snooper interception), entering the fabric on the switch-internal
// injection port in. Destinations below sw's subtree descend directly;
// memory-side destinations whose top rank is not straight above climb
// only as far as needed, and processor-side destinations outside the
// subtree pivot through sel-chosen free digits exactly like
// Turnaround. The lane arithmetic anchors on sw's first endpoint
// (index*Radix), matching the pre-arithmetic implementation hop for
// hop on 2-stage machines.
func (t *T) RouteFrom(sw SwitchID, in Port, memSide bool, node, sel int) []Hop {
	t.checkNode(node)
	w, rank := sw.Index, sw.Stage
	anchor := sw.Index * t.Radix
	buf := make([]Hop, 0, 2*t.Stages-1)
	if memSide {
		top := node / t.Radix
		// Descend until every digit below the current rank matches the
		// destination top, then climb.
		low := rank
		for j := 0; j < rank; j++ {
			if t.digit(w, j) != t.digit(top, j) {
				low = j
				break
			}
		}
		for j := rank - 1; j >= low; j-- {
			d := t.digit(top, j)
			lane := (anchor + node) % t.lanes[j]
			buf = append(buf, Hop{Sw: SwitchID{j + 1, w}, In: in, Out: t.downPort(j, d, lane)})
			in = t.upPort(j, t.digit(w, j), lane)
			w = t.setDigit(w, j, d)
		}
		for j := low; j < t.Stages-1; j++ {
			c := t.digit(top, j)
			lane := (anchor + node) % t.lanes[j]
			buf = append(buf, Hop{Sw: SwitchID{j, w}, In: in, Out: t.upPort(j, c, lane)})
			in = t.downPort(j, t.digit(w, j), lane)
			w = t.setDigit(w, j, c)
		}
		return append(buf, Hop{Sw: SwitchID{t.Stages - 1, w}, In: in, Out: Port(t.Radix + node%t.Radix)})
	}
	dl := node / t.Radix
	if rank == 0 && dl == w {
		return append(buf, Hop{Sw: sw, In: in, Out: Port(node % t.Radix)})
	}
	pivot := rank
	for j := rank; j < t.Stages-1; j++ {
		if t.digit(w, j) != t.digit(dl, j) {
			pivot = j + 1
		}
	}
	if pivot == rank {
		// Pure down path: the destination leaf is in this subtree.
		for j := rank - 1; j >= 0; j-- {
			d := t.digit(dl, j)
			lane := (anchor + node) % t.lanes[j]
			buf = append(buf, Hop{Sw: SwitchID{j + 1, w}, In: in, Out: t.downPort(j, d, lane)})
			in = t.upPort(j, t.digit(w, j), lane)
			w = t.setDigit(w, j, d)
		}
		return append(buf, Hop{Sw: SwitchID{0, w}, In: in, Out: Port(node % t.Radix)})
	}
	s := sel % t.selPeriod
	if s < 0 {
		s += t.selPeriod
	}
	for j := rank; j < pivot; j++ {
		f := t.digit(s, j)
		lane := (anchor + s) % t.lanes[j]
		buf = append(buf, Hop{Sw: SwitchID{j, w}, In: in, Out: t.upPort(j, f, lane)})
		in = t.downPort(j, t.digit(w, j), lane)
		w = t.setDigit(w, j, f)
	}
	for j := pivot - 1; j >= 0; j-- {
		d := t.digit(dl, j)
		lane := (node + s) % t.lanes[j]
		buf = append(buf, Hop{Sw: SwitchID{j + 1, w}, In: in, Out: t.downPort(j, d, lane)})
		in = t.upPort(j, t.digit(w, j), lane)
		w = t.setDigit(w, j, d)
	}
	return append(buf, Hop{Sw: SwitchID{0, w}, In: in, Out: Port(node % t.Radix)})
}

// PortPeer describes what a switch output port connects to: another
// switch's input port, or a delivery link to an endpoint.
type PortPeer struct {
	// Switch is the peer switch ordinal, or -1 for an endpoint link.
	Switch int
	// In is the peer switch's input port (switch links only).
	In Port
	// Node is the endpoint node number (endpoint links only).
	Node int
	// MemSide is true for a memory endpoint, false for a processor.
	MemSide bool
}

// Peer resolves one output port of one switch. Down ports of rank 0
// deliver to processors and up ports of the top rank to memories;
// every other port is an inter-switch link. The wiring is symmetric:
// if sw's output port p reaches peer input port q, then the peer's
// output port q reaches sw's input port p.
func (t *T) Peer(sw SwitchID, out Port) PortPeer {
	w, rank, r := sw.Index, sw.Stage, t.Radix
	if int(out) < r { // down port
		if rank == 0 {
			return PortPeer{Switch: -1, Node: w*r + int(out)}
		}
		j := rank - 1
		d := int(out) / t.lanes[j]
		lane := int(out) % t.lanes[j]
		peer := t.setDigit(w, j, d)
		return PortPeer{
			Switch: t.SwitchOrdinal(SwitchID{j, peer}),
			In:     t.upPort(j, t.digit(w, j), lane),
		}
	}
	up := int(out) - r
	if rank == t.Stages-1 {
		return PortPeer{Switch: -1, Node: w*r + up, MemSide: true}
	}
	c := up / t.lanes[rank]
	lane := up % t.lanes[rank]
	peer := t.setDigit(w, rank, c)
	return PortPeer{
		Switch: t.SwitchOrdinal(SwitchID{rank + 1, peer}),
		In:     t.downPort(rank, t.digit(w, rank), lane),
	}
}

// Link names one directional link by its source switch ordinal (see
// SwitchOrdinal) and output port. This covers both inter-switch links
// and endpoint delivery links; injection links (endpoint into switch)
// are not separately addressable.
type Link struct {
	Sw  int  // source switch ordinal
	Out Port // output port on the source switch
}

func (l Link) String() string { return fmt.Sprintf("sw%d:out%d", l.Sw, l.Out) }

// InterSwitchLinks enumerates every directional inter-switch link in
// deterministic order: each rank's up-links from the bottom upward,
// then each rank's down-links from the top downward (on the 2-stage
// machine: all leaf up-links, then all top down-links). Endpoint
// delivery links are excluded — severing one isolates its endpoint
// outright (a partition), whereas any single inter-switch link loss
// leaves the fabric connected.
func (t *T) InterSwitchLinks() []Link {
	var out []Link
	for rank := 0; rank < t.Stages-1; rank++ {
		for w := 0; w < t.Leaves; w++ {
			ord := t.SwitchOrdinal(SwitchID{Stage: rank, Index: w})
			for p := t.Radix; p < 2*t.Radix; p++ {
				out = append(out, Link{Sw: ord, Out: Port(p)})
			}
		}
	}
	for rank := t.Stages - 1; rank >= 1; rank-- {
		for w := 0; w < t.Leaves; w++ {
			ord := t.SwitchOrdinal(SwitchID{Stage: rank, Index: w})
			for p := 0; p < t.Radix; p++ {
				out = append(out, Link{Sw: ord, Out: Port(p)})
			}
		}
	}
	return out
}

// AppendSwitchesForward appends just the switches on the forward path,
// in traversal order; used by the trace-driven simulator, which models
// directory placement but not link timing.
func (t *T) AppendSwitchesForward(buf []SwitchID, proc, mem int) []SwitchID {
	t.checkNode(proc)
	t.checkNode(mem)
	w, top := proc/t.Radix, mem/t.Radix
	for j := 0; j < t.Stages-1; j++ {
		buf = append(buf, SwitchID{j, w})
		w = t.setDigit(w, j, t.digit(top, j))
	}
	return append(buf, SwitchID{t.Stages - 1, w})
}

// SwitchesForward lists just the switches on the forward path.
func (t *T) SwitchesForward(proc, mem int) []SwitchID {
	return t.AppendSwitchesForward(make([]SwitchID, 0, t.Stages), proc, mem)
}

// AppendSwitchesBackward appends the switches on the backward path in
// order: the forward path reversed.
func (t *T) AppendSwitchesBackward(buf []SwitchID, mem, proc int) []SwitchID {
	start := len(buf)
	buf = t.AppendSwitchesForward(buf, proc, mem)
	fwd := buf[start:]
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	return buf
}

// SwitchesBackward lists the switches on the backward path in order.
func (t *T) SwitchesBackward(mem, proc int) []SwitchID {
	return t.AppendSwitchesBackward(make([]SwitchID, 0, t.Stages), mem, proc)
}

func (t *T) checkNode(n int) {
	if n < 0 || n >= t.Nodes {
		panic(fmt.Sprintf("topo: node %d out of range [0,%d)", n, t.Nodes))
	}
}

func (t *T) String() string {
	return fmt.Sprintf("BMIN(%d nodes, %d stages of %dx%d switches, %d per rank, bundle %d)",
		t.Nodes, t.Stages, 2*t.Radix, 2*t.Radix, t.Leaves, t.Bundle)
}
