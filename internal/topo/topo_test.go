package topo

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidations(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("nodes=0 accepted")
	}
	if _, err := New(16, 0); err == nil {
		t.Error("radix=0 accepted")
	}
	if _, err := New(15, 4); err == nil {
		t.Error("nodes not divisible by radix accepted")
	}
	// 24 nodes of radix 4: 6 switches per rank, but 6 does not divide
	// any power of 4 — no butterfly of any depth exists. The error must
	// name the derived stage count and suggest nearby geometries.
	if _, err := New(24, 4); err == nil {
		t.Error("unfactorable 24/4 geometry accepted")
	} else {
		msg := err.Error()
		if !strings.Contains(msg, "3 stages") || !strings.Contains(msg, "nearest valid") {
			t.Errorf("error lacks stage count or suggestions: %v", err)
		}
	}
	bt, err := New(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Leaves != 4 || bt.Tops != 4 || bt.Bundle != 1 {
		t.Fatalf("16/4 topology = %+v", bt)
	}
	bt8, err := New(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bt8.Leaves != 2 || bt8.Tops != 2 || bt8.Bundle != 4 {
		t.Fatalf("16/8 topology = %+v", bt8)
	}
	bt64, err := New(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bt64.Leaves != 8 || bt64.Bundle != 1 {
		t.Fatalf("64/8 topology = %+v", bt64)
	}
}

// validateHops checks structural sanity of a route on topology bt:
// consecutive hops are wired together consistently, and ports are in
// range with the right orientation.
func validateHops(t *testing.T, bt *T, hops []Hop) {
	t.Helper()
	for _, h := range hops {
		if h.In < 0 || int(h.In) >= 2*bt.Radix || h.Out < 0 || int(h.Out) >= 2*bt.Radix {
			t.Fatalf("port out of range in hop %+v", h)
		}
		if h.Sw.Stage < 0 || h.Sw.Stage >= bt.Stages {
			t.Fatalf("bad stage in hop %+v", h)
		}
	}
}

func TestForwardBackwardSymmetry(t *testing.T) {
	for _, cfg := range [][2]int{{16, 4}, {16, 8}, {64, 8}, {4, 2}} {
		bt := MustNew(cfg[0], cfg[1])
		for p := 0; p < bt.Nodes; p++ {
			for m := 0; m < bt.Nodes; m++ {
				f := bt.Forward(p, m)
				b := bt.Backward(m, p)
				validateHops(t, bt, f)
				validateHops(t, bt, b)
				if len(f) != bt.Stages || len(b) != bt.Stages {
					t.Fatalf("%v: route length f=%d b=%d, want %d", bt, len(f), len(b), bt.Stages)
				}
				// Path overlap: backward is the exact reverse of forward.
				for i := range f {
					rb := b[len(b)-1-i]
					if f[i].Sw != rb.Sw || f[i].In != rb.Out || f[i].Out != rb.In {
						t.Fatalf("%v: backward not reverse of forward for p=%d m=%d:\n f=%v\n b=%v", bt, p, m, f, b)
					}
				}
				// Endpoint ports: first hop enters at proc's leaf port,
				// last hop exits at memory's top port.
				if f[0].Sw != bt.LeafOf(p) || int(f[0].In) != p%bt.Radix {
					t.Fatalf("forward entry wrong: %+v for p=%d", f[0], p)
				}
				last := f[len(f)-1]
				if last.Sw != bt.TopOf(m) || int(last.Out) != bt.Radix+m%bt.Radix {
					t.Fatalf("forward exit wrong: %+v for m=%d", last, m)
				}
				// Orientation: leaf exit is an up port, top entry a down port.
				if int(f[0].Out) < bt.Radix {
					t.Fatalf("leaf must exit upward: %+v", f[0])
				}
				if int(last.In) >= bt.Radix {
					t.Fatalf("top must be entered from below: %+v", last)
				}
			}
		}
	}
}

func TestWiringConsistency(t *testing.T) {
	// The (leaf out port, top in port) pair must describe the same
	// physical link for every route using it: build the link map from
	// all routes and check no port maps to two different peers.
	for _, cfg := range [][2]int{{16, 4}, {16, 8}, {64, 8}} {
		bt := MustNew(cfg[0], cfg[1])
		type end struct {
			sw   SwitchID
			port Port
		}
		peer := map[end]end{}
		check := func(a, b end) {
			if prev, ok := peer[a]; ok && prev != b {
				t.Fatalf("%v: port %v/%d wired to both %v and %v", bt, a.sw, a.port, prev, b)
			}
			peer[a] = b
		}
		for p := 0; p < bt.Nodes; p++ {
			for m := 0; m < bt.Nodes; m++ {
				f := bt.Forward(p, m)
				check(end{f[0].Sw, f[0].Out}, end{f[1].Sw, f[1].In})
				check(end{f[1].Sw, f[1].In}, end{f[0].Sw, f[0].Out})
			}
		}
	}
}

func TestTurnaround(t *testing.T) {
	bt := MustNew(16, 4)
	// Same leaf: single hop.
	h := bt.Turnaround(0, 1, 9)
	if len(h) != 1 || h[0].Sw != (SwitchID{0, 0}) {
		t.Fatalf("same-leaf turnaround = %v", h)
	}
	// Different leaves: three hops up-top-down.
	h = bt.Turnaround(0, 15, 9)
	if len(h) != 3 {
		t.Fatalf("cross-leaf turnaround = %v", h)
	}
	if h[0].Sw.Stage != 0 || h[1].Sw.Stage != 1 || h[2].Sw.Stage != 0 {
		t.Fatalf("turnaround stages wrong: %v", h)
	}
	if h[1].Sw.Index != 9%bt.Tops {
		t.Fatalf("turnaround top = %v, want sel%%tops", h[1].Sw)
	}
	if h[2].Sw != bt.LeafOf(15) || int(h[2].Out) != 15%bt.Radix {
		t.Fatalf("turnaround delivery wrong: %v", h[2])
	}
	// Entry/exit orientation at the top: both down-side ports.
	if int(h[1].In) >= bt.Radix || int(h[1].Out) >= bt.Radix {
		t.Fatalf("turnaround must enter and exit top on down ports: %+v", h[1])
	}
}

func TestTurnaroundNegativeSel(t *testing.T) {
	bt := MustNew(16, 4)
	h := bt.Turnaround(0, 15, -3)
	if len(h) != 3 {
		t.Fatalf("turnaround with negative sel = %v", h)
	}
	if h[1].Sw.Index < 0 || h[1].Sw.Index >= bt.Tops {
		t.Fatalf("negative sel gave bad top index: %v", h[1].Sw)
	}
}

func TestSwitchLists(t *testing.T) {
	bt := MustNew(16, 4)
	sf := bt.SwitchesForward(3, 12)
	if len(sf) != 2 || sf[0] != bt.LeafOf(3) || sf[1] != bt.TopOf(12) {
		t.Fatalf("SwitchesForward = %v", sf)
	}
	sb := bt.SwitchesBackward(12, 3)
	if len(sb) != 2 || sb[0] != bt.TopOf(12) || sb[1] != bt.LeafOf(3) {
		t.Fatalf("SwitchesBackward = %v", sb)
	}
}

func TestSwitchOrdinal(t *testing.T) {
	bt := MustNew(16, 4)
	seen := map[int]bool{}
	for s := 0; s < 2; s++ {
		count := bt.Leaves
		if s == 1 {
			count = bt.Tops
		}
		for i := 0; i < count; i++ {
			o := bt.SwitchOrdinal(SwitchID{s, i})
			if o < 0 || o >= bt.NumSwitches() || seen[o] {
				t.Fatalf("ordinal collision or out of range: %d for S%d.%d", o, s, i)
			}
			seen[o] = true
		}
	}
	if len(seen) != bt.NumSwitches() {
		t.Fatalf("ordinals cover %d of %d", len(seen), bt.NumSwitches())
	}
}

func TestLaneStability(t *testing.T) {
	// Property: the lane chosen for (p, m) is constant, so the route is
	// a pure function of the pair — point-to-point order preserved.
	bt := MustNew(16, 8) // bundle 4, the interesting case
	f := func(p, m uint8) bool {
		pp, mm := int(p)%16, int(m)%16
		a := bt.Forward(pp, mm)
		b := bt.Forward(pp, mm)
		return a[0] == b[0] && a[1] == b[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadNode(t *testing.T) {
	bt := MustNew(16, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward(16, 0) did not panic")
		}
	}()
	bt.Forward(16, 0)
}

func TestString(t *testing.T) {
	bt := MustNew(16, 4)
	if bt.String() == "" || (SwitchID{1, 2}).String() != "S1.2" {
		t.Fatal("string forms broken")
	}
}
