package topo

// RouteCache memoizes hot routes over a T behind a bounded LRU, so
// the steady-state cost of routing is one map probe and no allocation
// while total route state stays O(capacity) instead of the O(Nodes²)
// of a per-pair table. Each concurrent routing domain (xbar shard,
// flit network) owns its own instance: the cache is not safe for
// concurrent use, and keeping it per-shard is what lets T itself stay
// immutable and lock-free.
//
// Returned hop slices are shared between the cache and every caller
// that looked them up: treat them as immutable. Eviction only drops
// the cache's reference — a message still in flight keeps its route
// alive, so bounded capacity never corrupts live traffic.
type RouteCache struct {
	t    *T
	cap  int
	idx  map[uint64]int32
	ents []rcEnt
	// head/tail of the intrusive LRU list (head = most recent).
	head, tail int32
}

type rcEnt struct {
	key        uint64
	hops       []Hop
	prev, next int32
}

// DefaultRouteCacheEntries holds the full working set of the paper's
// machines (the 16-node evaluation needs ~1.5K distinct routes, the
// 64-node scalability point ~12K) while bounding big machines: a
// 1024-node run keeps its hottest 32K paths and recomputes the cold
// tail arithmetically.
const DefaultRouteCacheEntries = 1 << 15

// route-kind tags for cache keys.
const (
	rcForward = iota
	rcBackward
	rcTurnaround
	rcFrom
	rcFromMem
)

// key packs (kind, a, b, sel) into one word. Node and switch indices
// fit 20 bits (a million endpoints) and sel is pre-reduced modulo
// SelPeriod, which fits the remaining 21 bits for every geometry the
// index widths admit.
func rcKey(kind, a, b, sel int) uint64 {
	return uint64(kind) | uint64(a)<<3 | uint64(b)<<23 | uint64(sel)<<43
}

// NewRouteCache builds a cache over t holding up to capacity routes
// (DefaultRouteCacheEntries when capacity <= 0).
func NewRouteCache(t *T, capacity int) *RouteCache {
	if capacity <= 0 {
		capacity = DefaultRouteCacheEntries
	}
	return &RouteCache{
		t:    t,
		cap:  capacity,
		idx:  make(map[uint64]int32, capacity),
		head: -1,
		tail: -1,
	}
}

// get returns the cached route for key and marks it most-recent.
func (c *RouteCache) get(key uint64) ([]Hop, bool) {
	i, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.touch(i)
	return c.ents[i].hops, true
}

// touch moves entry i to the LRU head.
func (c *RouteCache) touch(i int32) {
	if c.head == i {
		return
	}
	e := &c.ents[i]
	if e.prev >= 0 {
		c.ents[e.prev].next = e.next
	}
	if e.next >= 0 {
		c.ents[e.next].prev = e.prev
	}
	if c.tail == i {
		c.tail = e.prev
	}
	e.prev, e.next = -1, c.head
	if c.head >= 0 {
		c.ents[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// put inserts a freshly computed route, evicting the least-recent
// entry when full. Evicted slots are reused in place; the evicted hop
// slice itself is released to the collector (never overwritten), so
// routes held by in-flight messages stay intact.
func (c *RouteCache) put(key uint64, hops []Hop) {
	var i int32
	if len(c.ents) < c.cap {
		i = int32(len(c.ents))
		c.ents = append(c.ents, rcEnt{prev: -1, next: -1})
	} else {
		i = c.tail
		e := &c.ents[i]
		delete(c.idx, e.key)
		c.tail = e.prev
		if c.tail >= 0 {
			c.ents[c.tail].next = -1
		} else {
			c.head = -1
		}
		e.prev, e.next = -1, -1
	}
	c.ents[i].key, c.ents[i].hops = key, hops
	c.idx[key] = i
	e := &c.ents[i]
	e.next = c.head
	if c.head >= 0 {
		c.ents[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// Forward is T.Forward through the cache.
func (c *RouteCache) Forward(proc, mem int) []Hop {
	key := rcKey(rcForward, proc, mem, 0)
	if h, ok := c.get(key); ok {
		return h
	}
	h := c.t.Forward(proc, mem)
	c.put(key, h)
	return h
}

// Backward is T.Backward through the cache.
func (c *RouteCache) Backward(mem, proc int) []Hop {
	key := rcKey(rcBackward, mem, proc, 0)
	if h, ok := c.get(key); ok {
		return h
	}
	h := c.t.Backward(mem, proc)
	c.put(key, h)
	return h
}

// Turnaround is T.Turnaround through the cache; sel is reduced to its
// effective period before keying.
func (c *RouteCache) Turnaround(src, dst, sel int) []Hop {
	s := sel % c.t.selPeriod
	if s < 0 {
		s += c.t.selPeriod
	}
	key := rcKey(rcTurnaround, src, dst, s)
	if h, ok := c.get(key); ok {
		return h
	}
	h := c.t.Turnaround(src, dst, s)
	c.put(key, h)
	return h
}

// RouteFrom is T.RouteFrom through the cache. The injection port is
// not part of the key: for a given T it is a constant (the switch-
// internal pseudo-port), and the cached route embeds it.
func (c *RouteCache) RouteFrom(sw SwitchID, in Port, memSide bool, node, sel int) []Hop {
	kind := rcFrom
	s := 0
	if memSide {
		kind = rcFromMem
	} else {
		s = sel % c.t.selPeriod
		if s < 0 {
			s += c.t.selPeriod
		}
	}
	key := rcKey(kind, c.t.SwitchOrdinal(sw), node, s)
	if h, ok := c.get(key); ok {
		return h
	}
	h := c.t.RouteFrom(sw, in, memSide, node, sel)
	c.put(key, h)
	return h
}

// Len reports the number of cached routes (for tests and memory
// accounting).
func (c *RouteCache) Len() int { return len(c.ents) }
