package cache

import (
	"testing"
	"testing/quick"
)

func cfg16k() Config {
	return Config{SizeBytes: 16 << 10, Ways: 2, BlockBytes: 32, AccessCycles: 1}
}
func cfg128k() Config {
	return Config{SizeBytes: 128 << 10, Ways: 4, BlockBytes: 32, AccessCycles: 8}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, Ways: 2, BlockBytes: 33},
		{SizeBytes: 1024, Ways: 0, BlockBytes: 32},
		{SizeBytes: 1024, Ways: 3, BlockBytes: 32}, // 32 lines not divisible by 3... 32/3 no
		{SizeBytes: 96, Ways: 1, BlockBytes: 32},   // 3 sets, not power of two
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := New(cfg16k()); err != nil {
		t.Fatal(err)
	}
}

func TestInsertLookupInvalidate(t *testing.T) {
	c := MustNew(cfg16k())
	if l := c.Access(0x1000); l != nil {
		t.Fatal("hit in empty cache")
	}
	c.Insert(0x1000, Shared, 7)
	l := c.Access(0x1003) // same block, different offset
	if l == nil || l.State != Shared || l.Data != 7 {
		t.Fatalf("lookup after insert: %+v", l)
	}
	st, d, ok := c.Invalidate(0x1000)
	if !ok || st != Shared || d != 7 {
		t.Fatalf("invalidate = %v %d %v", st, d, ok)
	}
	if l := c.Access(0x1000); l != nil {
		t.Fatal("hit after invalidate")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache: three blocks mapping to the same set evict the LRU.
	c := MustNew(Config{SizeBytes: 2048, Ways: 2, BlockBytes: 32, AccessCycles: 1})
	nsets := uint64(2048 / 32 / 2)
	a := uint64(0)
	b := nsets * 32     // same set as a
	d := 2 * nsets * 32 // same set again
	c.Insert(a, Modified, 1)
	c.Insert(b, Shared, 2)
	c.Access(a) // a is now MRU; b is LRU
	v, had := c.Insert(d, Shared, 3)
	if !had || v.Addr != b || v.State != Shared {
		t.Fatalf("victim = %+v (had=%v), want block b", v, had)
	}
	if st, _ := c.Probe(a); st != Modified {
		t.Fatal("MRU block evicted")
	}
	// Evicting the dirty block reports Modified victim.
	e := 3 * nsets * 32
	v, had = c.Insert(e, Shared, 4)
	if !had || v.State != Modified || v.Addr != a || v.Data != 1 {
		t.Fatalf("dirty victim = %+v", v)
	}
	if c.Stats.DirtyEvic != 1 {
		t.Fatalf("dirty evictions = %d", c.Stats.DirtyEvic)
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	c := MustNew(cfg16k())
	c.Insert(0x40, Shared, 1)
	v, had := c.Insert(0x40, Modified, 2)
	if had {
		t.Fatalf("re-insert produced victim %+v", v)
	}
	st, d := c.Probe(0x40)
	if st != Modified || d != 2 {
		t.Fatalf("after upgrade: %v %d", st, d)
	}
}

func TestDowngradeAndSetData(t *testing.T) {
	c := MustNew(cfg16k())
	c.Insert(0x40, Modified, 5)
	if !c.Downgrade(0x40) {
		t.Fatal("downgrade failed")
	}
	if st, _ := c.Probe(0x40); st != Shared {
		t.Fatal("not shared after downgrade")
	}
	if c.Downgrade(0x40) {
		t.Fatal("downgrade of S line succeeded")
	}
	if !c.SetData(0x40, 9) {
		t.Fatal("SetData failed")
	}
	if _, d := c.Probe(0x40); d != 9 {
		t.Fatal("SetData did not stick")
	}
	if c.SetData(0xFFFF00, 1) {
		t.Fatal("SetData on absent line succeeded")
	}
}

func TestBlockAlign(t *testing.T) {
	c := MustNew(cfg16k())
	if c.BlockAlign(0x47) != 0x40 || c.BlockAlign(0x40) != 0x40 {
		t.Fatal("block align broken")
	}
}

func TestLinesIteration(t *testing.T) {
	c := MustNew(cfg16k())
	c.Insert(0x40, Shared, 1)
	c.Insert(0x80, Modified, 2)
	seen := map[uint64]State{}
	c.Lines(func(a uint64, s State, d uint64) { seen[a] = s })
	if len(seen) != 2 || seen[0x40] != Shared || seen[0x80] != Modified {
		t.Fatalf("lines = %v", seen)
	}
}

func TestCachePropertyPresence(t *testing.T) {
	// Property: after inserting a set of distinct blocks that all fit,
	// every one is present with its data.
	f := func(seeds []uint8) bool {
		c := MustNew(Config{SizeBytes: 1 << 14, Ways: 4, BlockBytes: 32, AccessCycles: 1})
		if len(seeds) > 64 {
			seeds = seeds[:64]
		}
		blocks := map[uint64]uint64{}
		for i, s := range seeds {
			// Distinct sets to avoid eviction: spread by index.
			addr := uint64(i) * 32
			blocks[addr] = uint64(s)
			c.Insert(addr, Shared, uint64(s))
		}
		for a, d := range blocks {
			st, got := c.Probe(a)
			if st != Shared || got != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInclusion(t *testing.T) {
	h := MustNewHierarchy(cfg16k(), cfg128k())
	// Fill more blocks than L1 holds; inclusion must hold throughout.
	for i := 0; i < 1024; i++ {
		h.Fill(uint64(i)*32, Shared, uint64(i))
		if i%128 == 0 {
			if err := h.CheckInclusion(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyReadLatencies(t *testing.T) {
	h := MustNewHierarchy(cfg16k(), cfg128k())
	h.Fill(0x40, Shared, 3)
	r := h.Read(0x40)
	if !r.HitL1 || r.Cycles != 1 {
		t.Fatalf("L1 hit = %+v", r)
	}
	// Evict from L1 only: fill L1's set with conflicting blocks.
	l1sets := uint64(16 << 10 / 32 / 2)
	h.Fill(0x40+l1sets*32, Shared, 4)
	h.Fill(0x40+2*l1sets*32, Shared, 5)
	// 0x40 may now be L1-evicted; read must still hit L2 (9 cycles)
	// or L1 (1 cycle) — never miss.
	r = h.Read(0x40)
	if r.State == Invalid {
		t.Fatal("lost block present in L2")
	}
	if r.HitL2 && r.Cycles != 9 {
		t.Fatalf("L2 hit cycles = %d, want 9", r.Cycles)
	}
	// A clean miss.
	r = h.Read(0xABC000)
	if r.State != Invalid || r.Cycles != 9 {
		t.Fatalf("miss = %+v", r)
	}
}

func TestHierarchyL2VictimInvalidatesL1(t *testing.T) {
	// Tiny L2 to force L2 evictions while blocks are L1-resident.
	l1 := Config{SizeBytes: 512, Ways: 1, BlockBytes: 32, AccessCycles: 1}
	l2 := Config{SizeBytes: 512, Ways: 1, BlockBytes: 32, AccessCycles: 8}
	h := MustNewHierarchy(l1, l2)
	h.Fill(0x0, Modified, 1)
	// 512B direct-mapped: block 0x200 maps to the same set as 0x0.
	v, dirty := h.Fill(0x200, Shared, 2)
	if !dirty || v.Addr != 0 || v.Data != 1 {
		t.Fatalf("victim = %+v dirty=%v", v, dirty)
	}
	if err := h.CheckInclusion(); err != nil {
		t.Fatal(err)
	}
	if st, _ := h.L1.Probe(0x0); st != Invalid {
		t.Fatal("L1 still holds block evicted from L2")
	}
}

func TestHierarchyWriteHit(t *testing.T) {
	h := MustNewHierarchy(cfg16k(), cfg128k())
	h.Fill(0x40, Shared, 1)
	if h.WriteHit(0x40, 2) {
		t.Fatal("store retired into Shared line")
	}
	h.Fill(0x40, Modified, 1)
	if !h.WriteHit(0x40, 2) {
		t.Fatal("store to M line rejected")
	}
	if _, d := h.Probe(0x40); d != 2 {
		t.Fatal("version not bumped")
	}
	r := h.Read(0x40)
	if r.Data != 2 {
		t.Fatalf("L1 read after write = %+v, want version 2", r)
	}
}

func TestHierarchyInvalidateDowngrade(t *testing.T) {
	h := MustNewHierarchy(cfg16k(), cfg128k())
	h.Fill(0x40, Modified, 3)
	if !h.Downgrade(0x40) {
		t.Fatal("downgrade failed")
	}
	st, _, ok := h.Invalidate(0x40)
	if !ok || st != Shared {
		t.Fatalf("invalidate = %v %v", st, ok)
	}
	if st, _ := h.L1.Probe(0x40); st != Invalid {
		t.Fatal("L1 not invalidated")
	}
}

func TestWriteBuffer(t *testing.T) {
	w := NewWriteBuffer(2)
	if !w.Push(0x40, 1) || !w.Push(0x80, 2) {
		t.Fatal("pushes failed")
	}
	if !w.Push(0x40, 3) {
		t.Fatal("coalescing push failed on full buffer")
	}
	if w.Push(0xC0, 4) {
		t.Fatal("push into full buffer succeeded")
	}
	if v, ok := w.Pending(0x40); !ok || v != 3 {
		t.Fatalf("pending = %d %v, want coalesced 3", v, ok)
	}
	b, v, ok := w.Head()
	if !ok || b != 0x40 || v != 3 {
		t.Fatalf("head = %#x %d", b, v)
	}
	w.PopHead()
	if w.Len() != 1 {
		t.Fatalf("len = %d", w.Len())
	}
	b, _, _ = w.Head()
	if b != 0x80 {
		t.Fatalf("fifo order broken: head %#x", b)
	}
	w.PopHead()
	w.PopHead() // no-op on empty
	if _, _, ok := w.Head(); ok {
		t.Fatal("head on empty buffer")
	}
}

func TestVictimBuffer(t *testing.T) {
	v := NewVictimBuffer()
	v.Put(0x40, 9)
	if d, ok := v.Get(0x40); !ok || d != 9 {
		t.Fatalf("get = %d %v", d, ok)
	}
	if _, ok := v.Get(0x80); ok {
		t.Fatal("phantom entry")
	}
	v.Remove(0x40)
	if v.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string empty")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := MustNew(cfg128k())
	for i := 0; i < 4096; i++ {
		c.Insert(uint64(i)*32, Shared, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%4096) * 32)
	}
}

func TestHierarchyRefresh(t *testing.T) {
	h := MustNewHierarchy(cfg16k(), cfg128k())
	h.Fill(0x40, Shared, 3)
	h.Refresh(0x40, 9)
	if _, v := h.Probe(0x40); v != 9 {
		t.Fatalf("L2 version = %d", v)
	}
	r := h.Read(0x40)
	if r.Data != 9 {
		t.Fatalf("L1 read = %d, want refreshed 9", r.Data)
	}
	// Refreshing an absent block is a no-op.
	h.Refresh(0xFF00, 1)
	if st, _ := h.Probe(0xFF00); st != Invalid {
		t.Fatal("refresh materialized a block")
	}
}

func TestVictimBufferRefcount(t *testing.T) {
	v := NewVictimBuffer()
	v.Put(0x40, 5)
	v.Put(0x40, 9) // second eviction before first ack
	if d, ok := v.Get(0x40); !ok || d != 9 {
		t.Fatalf("get = %d %v, want newest 9", d, ok)
	}
	v.Remove(0x40) // first ack: entry must survive
	if _, ok := v.Get(0x40); !ok {
		t.Fatal("entry dropped with a reference outstanding")
	}
	v.Remove(0x40) // second ack: gone
	if _, ok := v.Get(0x40); ok {
		t.Fatal("entry survived final ack")
	}
	// Older Put never regresses the version.
	v.Put(0x80, 9)
	v.Put(0x80, 5)
	if d, _ := v.Get(0x80); d != 9 {
		t.Fatalf("version regressed to %d", d)
	}
}

func TestWriteBufferRemoveAndForEach(t *testing.T) {
	w := NewWriteBuffer(4)
	w.Push(0x40, 1)
	w.Push(0x80, 2)
	w.Push(0xC0, 3)
	w.Remove(0x80)
	var order []uint64
	w.ForEach(func(b, v uint64) bool {
		order = append(order, b)
		return true
	})
	if len(order) != 2 || order[0] != 0x40 || order[1] != 0xC0 {
		t.Fatalf("order = %#x", order)
	}
	if _, ok := w.Pending(0x80); ok {
		t.Fatal("removed entry still pending")
	}
	w.Remove(0x9999) // absent: no-op
	// ForEach early exit.
	count := 0
	w.ForEach(func(b, v uint64) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early exit visited %d", count)
	}
}
