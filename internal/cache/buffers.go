package cache

// WriteBuffer is the release-consistency store buffer: retired stores
// wait here while their ownership transactions complete, so the
// processor only stalls when the buffer is full. Entries are per-block
// and coalescing (a second store to a pending block folds in).
type WriteBuffer struct {
	cap     int
	order   []uint64          // FIFO of block addresses
	entries map[uint64]uint64 // block -> newest version to commit
}

// NewWriteBuffer builds a buffer holding up to capacity blocks.
func NewWriteBuffer(capacity int) *WriteBuffer {
	return &WriteBuffer{cap: capacity, entries: make(map[uint64]uint64)}
}

// Full reports whether a non-coalescing push would stall.
func (w *WriteBuffer) Full() bool { return len(w.order) >= w.cap }

// Len reports the number of pending blocks.
func (w *WriteBuffer) Len() int { return len(w.order) }

// Push records a store. It reports false when the buffer is full and
// the block is not already pending (the processor must stall).
func (w *WriteBuffer) Push(block, version uint64) bool {
	if _, ok := w.entries[block]; ok {
		w.entries[block] = version // coalesce
		return true
	}
	if w.Full() {
		return false
	}
	w.entries[block] = version
	w.order = append(w.order, block)
	return true
}

// Pending returns the buffered version for block, for read forwarding
// (a load must see the youngest program-order store).
func (w *WriteBuffer) Pending(block uint64) (uint64, bool) {
	v, ok := w.entries[block]
	return v, ok
}

// ForEach visits pending blocks in FIFO order.
func (w *WriteBuffer) ForEach(fn func(block, version uint64) bool) {
	for _, b := range w.order {
		if !fn(b, w.entries[b]) {
			return
		}
	}
}

// Remove deletes a specific pending block (out-of-order completion
// under release consistency).
func (w *WriteBuffer) Remove(block uint64) {
	if _, ok := w.entries[block]; !ok {
		return
	}
	delete(w.entries, block)
	for i, b := range w.order {
		if b == block {
			copy(w.order[i:], w.order[i+1:])
			w.order = w.order[:len(w.order)-1]
			return
		}
	}
}

// Head returns the oldest pending block without removing it.
func (w *WriteBuffer) Head() (block, version uint64, ok bool) {
	if len(w.order) == 0 {
		return 0, 0, false
	}
	b := w.order[0]
	return b, w.entries[b], true
}

// PopHead removes the oldest pending block.
func (w *WriteBuffer) PopHead() {
	if len(w.order) == 0 {
		return
	}
	delete(w.entries, w.order[0])
	copy(w.order, w.order[1:])
	w.order = w.order[:len(w.order)-1]
}

// VictimBuffer holds dirty blocks evicted from the L2 until the home
// acknowledges the WriteBack (WBAck). While a block sits here the node
// can still supply it to a cache-to-cache request, closing the
// eviction/forwarding race without a protocol NACK. Entries are
// reference counted: a block can be evicted again before the first
// writeback is acknowledged, and each WBAck releases one reference.
type VictimBuffer struct {
	entries map[uint64]*victimEntry
}

type victimEntry struct {
	version uint64
	refs    int
}

// NewVictimBuffer returns an empty buffer.
func NewVictimBuffer() *VictimBuffer {
	return &VictimBuffer{entries: make(map[uint64]*victimEntry)}
}

// Put stores an evicted dirty block awaiting WBAck, adding a
// reference. A newer version overwrites the held one.
func (v *VictimBuffer) Put(block, version uint64) {
	e, ok := v.entries[block]
	if !ok {
		v.entries[block] = &victimEntry{version: version, refs: 1}
		return
	}
	e.refs++
	if version > e.version {
		e.version = version
	}
}

// Get returns the version of a resident block.
func (v *VictimBuffer) Get(block uint64) (uint64, bool) {
	if e, ok := v.entries[block]; ok {
		return e.version, true
	}
	return 0, false
}

// Remove releases one reference (on WBAck); the block leaves the
// buffer when the last reference drops.
func (v *VictimBuffer) Remove(block uint64) {
	if e, ok := v.entries[block]; ok {
		e.refs--
		if e.refs <= 0 {
			delete(v.entries, block)
		}
	}
}

// Len reports resident block count.
func (v *VictimBuffer) Len() int { return len(v.entries) }
