// Package cache implements the processor-side memory hierarchy of
// Table 2: set-associative L1 and L2 caches with 32-byte lines, MSI
// line states, strict inclusion (every L1 line is present in L2), LRU
// replacement, a release-consistency write buffer, MSHRs for
// outstanding misses, and a victim buffer that holds evicted dirty
// blocks until the home acknowledges their writeback (which is what
// lets an in-flight cache-to-cache request always find its data at the
// owner even if the owner just replaced the line).
//
// Blocks carry a 64-bit version number instead of data bytes. Writers
// increment the version; the test suite uses it to prove value
// coherence end to end.
package cache

import "fmt"

// State is an MSI cache-line state.
type State uint8

const (
	// Invalid lines hold no data.
	Invalid State = iota
	// Shared lines are clean and possibly replicated.
	Shared
	// Modified lines are dirty and exclusive.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Line is one cache line.
type Line struct {
	Tag   uint64
	State State
	Data  uint64 // block version
	lru   uint64 // larger = more recently used
}

// Config sizes one cache level.
type Config struct {
	SizeBytes    int
	Ways         int
	BlockBytes   int
	AccessCycles uint64
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // total replacements of valid lines
	DirtyEvic uint64 // replacements that produced a writeback
}

// Cache is one set-associative cache level. All sets live in one flat
// backing array (set s occupies lines[s*ways : (s+1)*ways]): lookups
// are the hottest operation in the whole simulator, and the flat
// layout turns the per-access set fetch into pure index arithmetic on
// one cache-friendly allocation instead of a pointer chase through a
// slice of per-set slices.
//
// tags mirrors lines[i].Tag in a dense parallel array, with invalid
// ways holding noTag, so find scans 8 bytes per way (a whole 4-way set
// fits in one host cache line) and needs no State load: a single
// uint64 compare decides presence. Every site that changes a way's
// tag or validity must keep the mirror in sync.
type Cache struct {
	cfg   Config
	lines []Line
	tags  []uint64
	ways  uint64
	shift uint // log2(block)
	mask  uint64
	clock uint64
	Stats Stats
}

// noTag marks an invalid way in the tags mirror. Real tags are
// addr>>shift with shift >= 1, so all-ones is unreachable for any
// address below 2^63.
const noTag = ^uint64(0)

// New builds a cache from cfg, validating geometry.
func New(cfg Config) (*Cache, error) {
	if cfg.BlockBytes <= 0 || cfg.BlockBytes&(cfg.BlockBytes-1) != 0 {
		return nil, fmt.Errorf("cache: block size %d not a power of two", cfg.BlockBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways %d must be positive", cfg.Ways)
	}
	nlines := cfg.SizeBytes / cfg.BlockBytes
	if nlines <= 0 || nlines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d bytes / %dB blocks not divisible into %d ways", cfg.SizeBytes, cfg.BlockBytes, cfg.Ways)
	}
	nsets := nlines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nsets)
	}
	c := &Cache{cfg: cfg, lines: make([]Line, nlines), tags: make([]uint64, nlines), ways: uint64(cfg.Ways)}
	for i := range c.tags {
		c.tags[i] = noTag
	}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.shift++
	}
	c.mask = uint64(nsets - 1)
	return c, nil
}

// MustNew is New, panicking on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// AccessCycles is the hit latency of this level.
func (c *Cache) AccessCycles() uint64 { return c.cfg.AccessCycles }

// BlockAlign truncates addr to its block base.
func (c *Cache) BlockAlign(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

func (c *Cache) setIdx(addr uint64) uint64 { return (addr >> c.shift) & c.mask }
func (c *Cache) tag(addr uint64) uint64    { return addr >> c.shift }

// set returns the ways of addr's set as a slice of the flat array.
func (c *Cache) set(addr uint64) []Line {
	base := c.setIdx(addr) * c.ways
	return c.lines[base : base+c.ways]
}

// find returns the way holding addr, or nil. It scans the dense tags
// mirror (invalid ways hold noTag), the simulator's hottest loop.
func (c *Cache) find(addr uint64) *Line {
	base := c.setIdx(addr) * c.ways
	tg := c.tag(addr)
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == tg {
			return &c.lines[base+uint64(i)]
		}
	}
	return nil
}

// Probe returns the line state without updating LRU or stats; Invalid
// means not present.
func (c *Cache) Probe(addr uint64) (State, uint64) {
	if l := c.find(addr); l != nil {
		return l.State, l.Data
	}
	return Invalid, 0
}

// Access looks up addr, updating LRU and hit/miss statistics. It
// returns the line if present.
func (c *Cache) Access(addr uint64) *Line {
	l := c.find(addr)
	if l == nil {
		c.Stats.Misses++
		return nil
	}
	c.clock++
	l.lru = c.clock
	c.Stats.Hits++
	return l
}

// Victim describes a line displaced by Insert.
type Victim struct {
	Addr  uint64
	State State
	Data  uint64
}

// Insert places addr with the given state and data, evicting the LRU
// way if the set is full. It returns the displaced valid line, if any.
// Inserting a block that is already present updates it in place.
func (c *Cache) Insert(addr uint64, st State, data uint64) (Victim, bool) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	if l := c.find(addr); l != nil {
		c.clock++
		l.State, l.Data, l.lru = st, data, c.clock
		return Victim{}, false
	}
	set := c.set(addr)
	vi := 0
	for i := range set {
		if set[i].State == Invalid {
			vi = i
			break
		}
		if set[i].lru < set[vi].lru {
			vi = i
		}
	}
	victim := &set[vi]
	var out Victim
	had := victim.State != Invalid
	if had {
		c.Stats.Evictions++
		if victim.State == Modified {
			c.Stats.DirtyEvic++
		}
		out = Victim{Addr: victim.Tag << c.shift, State: victim.State, Data: victim.Data}
	}
	c.clock++
	*victim = Line{Tag: c.tag(addr), State: st, Data: data, lru: c.clock}
	c.tags[c.setIdx(addr)*c.ways+uint64(vi)] = c.tag(addr)
	return out, had
}

// Invalidate removes addr; it reports whether the line was present and
// returns its prior state and data (so dirty data can be forwarded).
func (c *Cache) Invalidate(addr uint64) (State, uint64, bool) {
	base := c.setIdx(addr) * c.ways
	tg := c.tag(addr)
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == tg {
			l := &c.lines[i]
			st, d := l.State, l.Data
			l.State = Invalid
			c.tags[i] = noTag
			return st, d, true
		}
	}
	return Invalid, 0, false
}

// Downgrade moves a Modified line to Shared (after a CtoC read); it
// reports whether the line was present in M.
func (c *Cache) Downgrade(addr uint64) bool {
	if l := c.find(addr); l != nil && l.State == Modified {
		l.State = Shared
		return true
	}
	return false
}

// SetData overwrites the version of a present line (a store hit).
func (c *Cache) SetData(addr uint64, data uint64) bool {
	if l := c.find(addr); l != nil {
		l.Data = data
		return true
	}
	return false
}

// Lines calls fn for every valid line; used by invariant checks.
func (c *Cache) Lines(fn func(addr uint64, st State, data uint64)) {
	for i := range c.lines {
		if c.lines[i].State != Invalid {
			fn(c.lines[i].Tag<<c.shift, c.lines[i].State, c.lines[i].Data)
		}
	}
}
