package cache

import "fmt"

// Hierarchy is the two-level inclusive cache of one node. The L2 is
// the coherence point: protocol state transitions apply to L2 and are
// propagated down to keep L1 a strict subset. Lookups report combined
// hit latency (L1 hit: L1 cycles; L2 hit: L1 + L2 cycles).
type Hierarchy struct {
	L1, L2 *Cache
}

// NewHierarchy builds an inclusive L1/L2 pair. The L1 must not be
// larger than the L2.
func NewHierarchy(l1, l2 Config) (*Hierarchy, error) {
	if l1.BlockBytes != l2.BlockBytes {
		return nil, fmt.Errorf("cache: L1/L2 block sizes differ (%d vs %d)", l1.BlockBytes, l2.BlockBytes)
	}
	if l1.SizeBytes > l2.SizeBytes {
		return nil, fmt.Errorf("cache: L1 (%dB) larger than L2 (%dB)", l1.SizeBytes, l2.SizeBytes)
	}
	c1, err := New(l1)
	if err != nil {
		return nil, err
	}
	c2, err := New(l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1: c1, L2: c2}, nil
}

// MustNewHierarchy panics on error.
func MustNewHierarchy(l1, l2 Config) *Hierarchy {
	h, err := NewHierarchy(l1, l2)
	if err != nil {
		panic(err)
	}
	return h
}

// LookupResult reports where a reference hit.
type LookupResult struct {
	State  State
	Data   uint64
	Cycles uint64 // access latency consumed by the lookup
	HitL1  bool
	HitL2  bool
}

// Read performs a load lookup. On an L2 hit the line is refilled into
// L1 (possibly displacing an L1 line, which needs no writeback thanks
// to inclusion: the L2 copy is current because stores write through to
// the L2 version field).
func (h *Hierarchy) Read(addr uint64) LookupResult {
	if l := h.L1.Access(addr); l != nil {
		return LookupResult{State: l.State, Data: l.Data, Cycles: h.L1.AccessCycles(), HitL1: true}
	}
	if l := h.L2.Access(addr); l != nil {
		h.L1.Insert(addr, l.State, l.Data)
		return LookupResult{State: l.State, Data: l.Data, Cycles: h.L1.AccessCycles() + h.L2.AccessCycles(), HitL2: true}
	}
	return LookupResult{State: Invalid, Cycles: h.L1.AccessCycles() + h.L2.AccessCycles()}
}

// Probe inspects coherence state without touching LRU or stats.
// Inclusion makes the L2 authoritative.
func (h *Hierarchy) Probe(addr uint64) (State, uint64) { return h.L2.Probe(addr) }

// WriteHit applies a store to a line already held in Modified state,
// bumping its version in both levels. It reports whether the store hit
// in M (the only state a store can retire into without a transaction).
func (h *Hierarchy) WriteHit(addr uint64, version uint64) bool {
	st, _ := h.L2.Probe(addr)
	if st != Modified {
		return false
	}
	h.L2.SetData(addr, version)
	h.L1.SetData(addr, version) // no-op if not L1-resident
	return true
}

// Fill installs a block arriving from the memory system into both
// levels and returns any dirty L2 victim that must be written back.
// Inclusion: an L2 victim is also removed from L1.
func (h *Hierarchy) Fill(addr uint64, st State, data uint64) (Victim, bool) {
	v, had := h.L2.Insert(addr, st, data)
	if had {
		h.L1.Invalidate(v.Addr)
	}
	h.L1.Insert(addr, st, data)
	if had && v.State == Modified {
		return v, true
	}
	return Victim{}, false
}

// Refresh overwrites a present block's version in both levels (a
// newer duplicate data reply superseding what was cached).
func (h *Hierarchy) Refresh(addr, version uint64) {
	h.L2.SetData(addr, version)
	h.L1.SetData(addr, version)
}

// Invalidate removes a block from both levels, returning its prior L2
// state and data.
func (h *Hierarchy) Invalidate(addr uint64) (State, uint64, bool) {
	h.L1.Invalidate(addr)
	return h.L2.Invalidate(addr)
}

// Downgrade moves a block M→S in both levels (after supplying a CtoC
// copy). It reports whether the block was present in M.
func (h *Hierarchy) Downgrade(addr uint64) bool {
	if !h.L2.Downgrade(addr) {
		return false
	}
	h.L1.Downgrade(addr)
	return true
}

// CheckInclusion verifies that every valid L1 line is present in L2
// with a compatible state and identical data; it returns the first
// violation found, or nil.
func (h *Hierarchy) CheckInclusion() error {
	var err error
	h.L1.Lines(func(addr uint64, st State, data uint64) {
		if err != nil {
			return
		}
		st2, d2 := h.L2.Probe(addr)
		if st2 == Invalid {
			err = fmt.Errorf("cache: L1 holds %#x (%v) absent from L2", addr, st)
			return
		}
		if d2 != data {
			err = fmt.Errorf("cache: L1/L2 data mismatch at %#x: %d vs %d", addr, data, d2)
		}
	})
	return err
}
