package figures

import (
	"fmt"
	"testing"

	"dresar/internal/core"
	"dresar/internal/trace"
	"dresar/internal/workload"
)

// diffWorkloads builds the differential corpus: the five scientific
// kernels at test scale plus a synthetic commercial trace replayed
// through the execution driver.
func diffWorkloads(t *testing.T) map[string]func() workload.Workload {
	t.Helper()
	return map[string]func() workload.Workload{
		"fft":   func() workload.Workload { return workload.NewFFT(4096, 16) },
		"tc":    func() workload.Workload { return workload.NewTC(64, 16) },
		"sor":   func() workload.Workload { return workload.NewSOR(128, 3, 16) },
		"fwa":   func() workload.Workload { return workload.NewFWA(64, 16) },
		"gauss": func() workload.Workload { return workload.NewGauss(64, 16) },
		"tpcc": func() workload.Workload {
			w, err := workload.FromTrace("tpcc", 16, trace.NewSynth(trace.TPCC(20000)), 20000)
			if err != nil {
				t.Fatal(err)
			}
			return w
		},
	}
}

// runDiff executes one workload on a fresh machine with the given
// worker count and returns the full statistics roll-up plus the
// profile totals (which exercise the per-shard merge paths).
func runDiff(t *testing.T, mk func() workload.Workload, cfg core.Config, workers int) (core.Stats, uint64, uint64) {
	t.Helper()
	cfg.ShardWorkers = workers
	cfg.CheckCoherence = true
	m, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := workload.NewDriver(m, mk())
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	p, sec := m.Profile.Totals()
	return s, p, sec
}

// TestSerialShardedDifferential is the sharded engine's acceptance
// gate: for every workload in the corpus, the complete core.Stats
// roll-up — every cycle count, latency sum, and traffic counter — must
// be identical between the serial engine and the sharded engine at 1,
// 2, 4 and 8 workers. Any divergence means an ordering in the model
// became observable and conservative synchronization no longer
// reproduces the serial run.
func TestSerialShardedDifferential(t *testing.T) {
	for _, cfgCase := range []struct {
		name string
		cfg  core.Config
	}{
		{"base", core.DefaultConfig()},
		{"sdir", core.DefaultConfig().WithSwitchDir(1024)},
	} {
		for name, mk := range diffWorkloads(t) {
			// The base corpus runs sdir-only except FFT, to bound test
			// time: the fabric code paths differ only via the snooper.
			if cfgCase.name == "base" && name != "fft" {
				continue
			}
			t.Run(fmt.Sprintf("%s/%s", cfgCase.name, name), func(t *testing.T) {
				want, wantP, wantS := runDiff(t, mk, cfgCase.cfg, 1)
				for _, workers := range []int{2, 4, 8} {
					got, gotP, gotS := runDiff(t, mk, cfgCase.cfg, workers)
					if got != want {
						t.Errorf("workers=%d stats diverge:\n got: %+v\nwant: %+v", workers, got, want)
					}
					if gotP != wantP || gotS != wantS {
						t.Errorf("workers=%d profile totals (%d,%d) != serial (%d,%d)",
							workers, gotP, gotS, wantP, wantS)
					}
				}
				// Adversarial-lookahead mode: randomize (seeded) every
				// granted window length inside its safe bound. Window
				// schedules are a wall-clock concern only, so any seed
				// must reproduce the serial stats bit for bit — if
				// dynamic lookahead ever made a window schedule
				// observable, this is the line that catches it.
				for _, workers := range []int{2, 8} {
					fcfg := cfgCase.cfg
					fcfg.ShardWindowFuzz = 0xD1E5A7<<8 | uint64(workers)
					got, gotP, gotS := runDiff(t, mk, fcfg, workers)
					if got != want {
						t.Errorf("workers=%d fuzzed-window stats diverge:\n got: %+v\nwant: %+v", workers, got, want)
					}
					if gotP != wantP || gotS != wantS {
						t.Errorf("workers=%d fuzzed-window profile totals (%d,%d) != serial (%d,%d)",
							workers, gotP, gotS, wantP, wantS)
					}
				}
			})
		}
	}
}

// TestShardedPaperScaleSmoke runs one paper-scale cell sharded and
// checks it against the serial run — the full-size configuration the
// speedup claim is measured on. Skipped under -short.
func TestShardedPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale differential run")
	}
	w, err := workload.ByName("fft", 16)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() workload.Workload { return w }
	cfg := core.DefaultConfig().WithSwitchDir(1024)
	want, _, _ := runDiff(t, mk, cfg, 1)
	got, _, _ := runDiff(t, mk, cfg, 4)
	if got != want {
		t.Errorf("paper-scale fft diverges:\n got: %+v\nwant: %+v", got, want)
	}
}
