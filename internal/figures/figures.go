// Package figures regenerates every result figure of the paper's
// evaluation (Figures 1, 2, 8, 9, 10, 11): the workload construction,
// the parameter sweeps over switch-directory sizes, the base-system
// comparisons, and the table formatting. Both cmd/figures and the
// repository's benchmark harness (bench_test.go) drive this package.
//
// Two scales are supported: ScalePaper uses the paper's inputs (Table
// 2: FFT 16K points, TC/FWA/GAUSS 128×128, SOR 512×512; 16M-reference
// commercial traces) and ScaleSmall uses reduced inputs for quick runs
// and CI.
package figures

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"dresar/internal/core"
	"dresar/internal/sim"
	"dresar/internal/trace"
	"dresar/internal/tracesim"
	"dresar/internal/workload"
)

// Scale selects input sizes.
type Scale int

const (
	// ScaleSmall is a reduced configuration for fast runs.
	ScaleSmall Scale = iota
	// ScalePaper is the paper's evaluation configuration (Table 2/3).
	ScalePaper
)

func (s Scale) String() string {
	if s == ScalePaper {
		return "paper"
	}
	return "small"
}

// DirSizes is the paper's switch-directory size sweep (entries); 0 is
// the base system with no switch directories.
var DirSizes = []int{0, 256, 512, 1024, 2048}

// Apps lists every workload in the paper's figure order.
var Apps = []string{"fft", "tc", "sor", "fwa", "gauss", "tpcc", "tpcd"}

// Commercial reports whether app runs on the trace-driven simulator.
func Commercial(app string) bool { return app == "tpcc" || app == "tpcd" }

// ScientificWorkload builds the named kernel at the given scale for 16
// processors.
func ScientificWorkload(name string, scale Scale) (workload.Workload, error) {
	if scale == ScalePaper {
		return workload.ByName(name, 16)
	}
	switch name {
	case "fft":
		return workload.NewFFT(4096, 16), nil
	case "tc":
		return workload.NewTC(64, 16), nil
	case "sor":
		return workload.NewSOR(128, 3, 16), nil
	case "fwa":
		return workload.NewFWA(64, 16), nil
	case "gauss", "ge":
		return workload.NewGauss(64, 16), nil
	}
	return nil, fmt.Errorf("figures: unknown kernel %q", name)
}

// traceRefs returns the commercial trace length for a scale.
func traceRefs(scale Scale) uint64 {
	if scale == ScalePaper {
		return 16_000_000
	}
	return 2_000_000
}

// Result is one (app, directory-size) measurement, with unified fields
// across the execution-driven and trace-driven simulators.
type Result struct {
	App        string
	Entries    int // 0 = base system
	Reads      uint64
	ReadMisses uint64
	Clean      uint64
	CtoCHome   uint64
	CtoCSwitch uint64
	AvgReadLat float64
	// CtoCLatShare is the dirty-miss fraction of total read latency
	// (Section 2: count share understates the latency component).
	CtoCLatShare float64
	ReadStall    uint64
	ExecCycles   uint64
}

// CtoC is the total dirty-miss count.
func (r Result) CtoC() uint64 { return r.CtoCHome + r.CtoCSwitch }

// RunOne executes one (app, entries) cell.
func RunOne(app string, scale Scale, entries int) (Result, error) {
	return RunOneCtx(context.Background(), app, scale, entries)
}

// RunOneCtx executes one (app, entries) cell under a cancellation
// context: the simulation polls ctx cooperatively (serial engine:
// every few events; sharded: once per lookahead quantum; trace-driven:
// every few thousand records) and a cancelled or deadline-exceeded
// context aborts the run with a *core.AbortError, wrapped so
// errors.As finds it, alongside the partial Result measured so far.
func RunOneCtx(ctx context.Context, app string, scale Scale, entries int) (Result, error) {
	if Commercial(app) {
		return runCommercial(ctx, app, scale, entries)
	}
	return runScientific(ctx, app, scale, entries)
}

// stopProbe converts ctx into an engine stop check, or nil for
// contexts that can never be cancelled (no polling overhead then).
func stopProbe(ctx context.Context) func() bool {
	if ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// ShardWorkers selects the intra-run execution engine for every
// execution-driven machine the figure helpers build: 0 defers to the
// DRESAR_ENGINE environment variable, 1 forces the serial engine, >1
// runs each cell on the sharded parallel engine with that many
// workers. Figure values are cycle-identical at any setting (enforced
// by the serial-vs-sharded differential tests), so this is purely a
// wall-clock knob — combine with SweepN's pool width bearing in mind
// the two multiply.
var ShardWorkers int

func runScientific(ctx context.Context, app string, scale Scale, entries int) (Result, error) {
	w, err := ScientificWorkload(app, scale)
	if err != nil {
		return Result{}, err
	}
	cfg := core.DefaultConfig()
	cfg.ShardWorkers = ShardWorkers
	if entries > 0 {
		cfg = cfg.WithSwitchDir(entries)
	}
	m, err := core.New(cfg)
	if err != nil {
		return Result{}, err
	}
	m.SetStopCheck(stopProbe(ctx))
	d, err := workload.NewDriver(m, w)
	if err != nil {
		return Result{}, err
	}
	s, err := d.Run()
	r := Result{
		App: app, Entries: entries,
		Reads: s.Reads, ReadMisses: s.ReadMisses, Clean: s.ReadClean,
		CtoCHome: s.ReadCtoCHome, CtoCSwitch: s.ReadCtoCSwitch,
		AvgReadLat: s.AvgReadLatency(), CtoCLatShare: s.CtoCLatencyShare(),
		ReadStall:  uint64(s.ReadStall),
		ExecCycles: uint64(s.Cycles),
	}
	if err != nil {
		// An abort keeps its partial Result (the driver collected the
		// machine before returning); other failures discard it.
		var abort *core.AbortError
		if errors.As(err, &abort) {
			return r, err
		}
		return Result{}, err
	}
	return r, nil
}

func synthFor(app string, scale Scale) trace.SynthConfig {
	if app == "tpcd" {
		return trace.TPCD(traceRefs(scale))
	}
	return trace.TPCC(traceRefs(scale))
}

func runCommercial(ctx context.Context, app string, scale Scale, entries int) (Result, error) {
	cfg := tracesim.DefaultConfig()
	if entries > 0 {
		cfg = cfg.WithSDir(entries)
	}
	s, err := tracesim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	s.Stop = stopProbe(ctx)
	st := s.Run(trace.NewSynth(synthFor(app, scale)))
	r := Result{
		App: app, Entries: entries,
		Reads: st.Reads, ReadMisses: st.ReadMisses, Clean: st.Clean,
		CtoCHome: st.CtoCHome, CtoCSwitch: st.CtoCSwitch,
		AvgReadLat: st.AvgReadLatency(), CtoCLatShare: st.CtoCLatencyShare(),
		ReadStall:  st.ReadStall,
		ExecCycles: st.ExecCycles,
	}
	if s.Stopped() {
		return r, fmt.Errorf("figures: %s/%d trace run aborted: %w", app, entries,
			&core.AbortError{Now: sim.Cycle(st.ExecCycles)})
	}
	return r, nil
}

// Sweep runs every app at every directory size (including the base)
// and indexes results by app then entries. Figures 8–11 all read from
// one sweep. Cells run concurrently on a bounded worker pool (each
// simulation is single-threaded and fully isolated, so results are
// bit-identical to a serial sweep); see SweepN to control the width.
func Sweep(scale Scale, apps []string, sizes []int) (map[string]map[int]Result, error) {
	return SweepN(scale, apps, sizes, 0)
}

// Fig1 reproduces Figure 1: the clean vs dirty split of read misses
// per application, on the base system.
func Fig1(scale Scale) (string, map[string][2]float64, error) {
	data := map[string][2]float64{}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: Fraction of Clean vs. Dirty (CtoC) Read Misses\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %12s %14s\n", "app", "clean", "dirty", "readMisses", "dirtyLatShare")
	for _, app := range Apps {
		r, err := RunOne(app, scale, 0)
		if err != nil {
			return "", nil, err
		}
		if r.ReadMisses == 0 {
			return "", nil, fmt.Errorf("fig1: %s produced no misses", app)
		}
		dirty := float64(r.CtoC()) / float64(r.ReadMisses)
		data[app] = [2]float64{1 - dirty, dirty}
		// The latency component (Section 2): dirty misses cost 1.5-2x
		// a clean access, so their latency share exceeds their count
		// share (the paper quotes FFT 65%->74%, TPC-C 38%->49%).
		fmt.Fprintf(&b, "%-8s %9.1f%% %9.1f%% %12d %13.1f%%\n",
			app, 100*(1-dirty), 100*dirty, r.ReadMisses, 100*r.CtoCLatShare)
	}
	return b.String(), data, nil
}

// Fig2 reproduces Figure 2: the cumulative distribution of TPC-C read
// misses and CtoC transfers over blocks sorted by misses/block.
func Fig2(scale Scale) (string, [][3]float64, error) {
	s, err := tracesim.New(tracesim.DefaultConfig())
	if err != nil {
		return "", nil, err
	}
	s.Run(trace.NewSynth(synthFor("tpcc", scale)))
	points := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 1.00}
	miss, ctoc := s.Profile.CDF(points)
	var rows [][3]float64
	var b strings.Builder
	totalMiss, totalCtoC := s.Profile.Totals()
	fmt.Fprintf(&b, "Figure 2: Access Frequency of TPC-C Blocks\n")
	fmt.Fprintf(&b, "blocks=%d readMisses=%d ctocs=%d\n", s.Profile.Len(), totalMiss, totalCtoC)
	fmt.Fprintf(&b, "%10s %10s %10s\n", "blockFrac", "cumMiss", "cumCtoC")
	for i, p := range points {
		rows = append(rows, [3]float64{p, miss[i], ctoc[i]})
		fmt.Fprintf(&b, "%9.0f%% %9.1f%% %9.1f%%\n", 100*p, 100*miss[i], 100*ctoc[i])
	}
	return b.String(), rows, nil
}

// normTable renders one of Figures 8–11: metric(app, size) normalized
// to the base system.
func normTable(title, metric string, sweep map[string]map[int]Result, value func(Result) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	sizes := append([]int{}, DirSizes...)
	sort.Ints(sizes)
	fmt.Fprintf(&b, "%-8s", "app")
	for _, n := range sizes {
		if n == 0 {
			fmt.Fprintf(&b, " %10s", "base")
		} else {
			fmt.Fprintf(&b, " %9dE", n)
		}
	}
	fmt.Fprintf(&b, "   (%s, normalized to base)\n", metric)
	for _, app := range Apps {
		row, ok := sweep[app]
		if !ok {
			continue
		}
		base := value(row[0])
		fmt.Fprintf(&b, "%-8s", app)
		for _, n := range sizes {
			r, ok := row[n]
			if !ok {
				fmt.Fprintf(&b, " %10s", "-")
				continue
			}
			v := 1.0
			if base > 0 {
				v = value(r) / base
			}
			fmt.Fprintf(&b, " %10.3f", v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Fig8 renders home-node CtoC transfers normalized to base.
func Fig8(sweep map[string]map[int]Result) string {
	return normTable("Figure 8: Reduction in Home Node CtoC Transfers",
		"home-node CtoC transfers", sweep,
		func(r Result) float64 { return float64(r.CtoCHome) })
}

// Fig9 renders average read latency normalized to base.
func Fig9(sweep map[string]map[int]Result) string {
	return normTable("Figure 9: Reduction in the Average Read Latency",
		"avg read latency", sweep,
		func(r Result) float64 { return r.AvgReadLat })
}

// Fig10 renders read stall time normalized to base.
func Fig10(sweep map[string]map[int]Result) string {
	return normTable("Figure 10: Reduction in the Read Stall Time",
		"read stall cycles", sweep,
		func(r Result) float64 { return float64(r.ReadStall) })
}

// Fig11 renders execution time normalized to base.
func Fig11(sweep map[string]map[int]Result) string {
	return normTable("Figure 11: Execution Time Reduction",
		"execution cycles", sweep,
		func(r Result) float64 { return float64(r.ExecCycles) })
}

// FigE1 is an extension experiment beyond the paper: the conclusion's
// proposed combination of switch directories with the switch-cache
// framework, across the scientific kernels. Reported per app: home
// directory requests and execution time of directory-only vs the
// combined fabric, both normalized to the base system.
func FigE1(scale Scale) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension E1: switch directory + switch cache (conclusion's proposal)\n")
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s\n",
		"app", "homeReads/b", "homeReads/c", "exec/base-d", "exec/base-c", "cacheServed")
	for _, app := range []string{"fft", "tc", "sor", "fwa", "gauss"} {
		w0, err := ScientificWorkload(app, scale)
		if err != nil {
			return "", err
		}
		base, err := runScientificW(w0, core.DefaultConfig())
		if err != nil {
			return "", err
		}
		w1, _ := ScientificWorkload(app, scale)
		dir, err := runScientificW(w1, core.DefaultConfig().WithSwitchDir(1024))
		if err != nil {
			return "", err
		}
		w2, _ := ScientificWorkload(app, scale)
		comb, err := runScientificW(w2, core.DefaultConfig().WithSwitchDir(1024).WithSwitchCache(512))
		if err != nil {
			return "", err
		}
		norm := func(v, bv uint64) float64 {
			if bv == 0 {
				return 1
			}
			return float64(v) / float64(bv)
		}
		fmt.Fprintf(&b, "%-8s %12.3f %12.3f %12.3f %12.3f %12d\n", app,
			norm(dir.HomeReads, base.HomeReads), norm(comb.HomeReads, base.HomeReads),
			norm(uint64(dir.Cycles), uint64(base.Cycles)), norm(uint64(comb.Cycles), uint64(base.Cycles)),
			comb.ReadCleanSwitch)
	}
	return b.String(), nil
}

// runScientificW runs one prepared workload under cfg.
func runScientificW(w workload.Workload, cfg core.Config) (core.Stats, error) {
	if cfg.ShardWorkers == 0 {
		cfg.ShardWorkers = ShardWorkers
	}
	m, err := core.New(cfg)
	if err != nil {
		return core.Stats{}, err
	}
	d, err := workload.NewDriver(m, w)
	if err != nil {
		return core.Stats{}, err
	}
	return d.Run()
}
