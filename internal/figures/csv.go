package figures

import (
	"fmt"
	"sort"
	"strings"
)

// SweepCSV renders the raw sweep as machine-readable CSV: one row per
// (app, entries) cell with every collected metric, plus normalized
// columns against each app's base run. Feed it to any plotting tool to
// redraw Figures 8–11.
func SweepCSV(sweep map[string]map[int]Result) string {
	var b strings.Builder
	b.WriteString("app,entries,reads,readMisses,clean,ctocHome,ctocSwitch,avgReadLat,readStall,execCycles,normCtoCHome,normReadLat,normReadStall,normExec\n")
	apps := make([]string, 0, len(sweep))
	for app := range sweep {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		row := sweep[app]
		sizes := make([]int, 0, len(row))
		for n := range row {
			sizes = append(sizes, n)
		}
		sort.Ints(sizes)
		base, hasBase := row[0]
		norm := func(v, bv float64) string {
			if !hasBase || bv == 0 {
				return ""
			}
			return fmt.Sprintf("%.4f", v/bv)
		}
		for _, n := range sizes {
			r := row[n]
			fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%.2f,%d,%d,%s,%s,%s,%s\n",
				r.App, r.Entries, r.Reads, r.ReadMisses, r.Clean, r.CtoCHome, r.CtoCSwitch,
				r.AvgReadLat, r.ReadStall, r.ExecCycles,
				norm(float64(r.CtoCHome), float64(base.CtoCHome)),
				norm(r.AvgReadLat, base.AvgReadLat),
				norm(float64(r.ReadStall), float64(base.ReadStall)),
				norm(float64(r.ExecCycles), float64(base.ExecCycles)))
		}
	}
	return b.String()
}

// Fig2CSV renders the block-skew CDF rows as CSV.
func Fig2CSV(rows [][3]float64) string {
	var b strings.Builder
	b.WriteString("blockFraction,cumMissFraction,cumCtoCFraction\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%.4f,%.4f,%.4f\n", r[0], r[1], r[2])
	}
	return b.String()
}
