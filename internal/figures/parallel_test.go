package figures

import (
	"fmt"
	"testing"
)

// TestSweepNMatchesSerial pins the parallel sweep's core guarantee:
// whatever the pool width, every cell's Result is bit-identical to a
// serial run, because each cell owns its whole machine (engine, RNG,
// message pool, topology). A small app × size subset keeps the test in
// the default suite; one scientific and one trace-driven app covers
// both simulator kinds. Run with -race in CI (make test-race) to prove
// the workers really share no state.
func TestSweepNMatchesSerial(t *testing.T) {
	apps := []string{"fft", "tpcc"}
	sizes := []int{0, 512}

	want := map[string]map[int]Result{}
	for _, app := range apps {
		want[app] = map[int]Result{}
		for _, n := range sizes {
			r, err := RunOne(app, ScaleSmall, n)
			if err != nil {
				t.Fatalf("RunOne(%s, %d): %v", app, n, err)
			}
			want[app][n] = r
		}
	}

	for _, workers := range []int{1, 2, 4, 16} {
		got, err := SweepN(ScaleSmall, apps, sizes, workers)
		if err != nil {
			t.Fatalf("SweepN(workers=%d): %v", workers, err)
		}
		for _, app := range apps {
			for _, n := range sizes {
				if got[app][n] != want[app][n] {
					t.Errorf("workers=%d %s/%d diverges from serial:\n got %+v\nwant %+v",
						workers, app, n, got[app][n], want[app][n])
				}
			}
		}
	}
}

// TestSweepNCanonicalError: when several cells fail, the error must be
// the canonically (apps, sizes) first one regardless of which worker
// finished first, so failures replay identically.
func TestSweepNCanonicalError(t *testing.T) {
	apps := []string{"no-such-app-a", "no-such-app-b"}
	sizes := []int{0, 256}
	for _, workers := range []int{1, 4} {
		_, err := SweepN(ScaleSmall, apps, sizes, workers)
		if err == nil {
			t.Fatalf("workers=%d: want error for unknown apps", workers)
		}
		want := fmt.Sprintf("%s/%d: ", apps[0], sizes[0])
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Errorf("workers=%d: error %q does not lead with canonical first cell %q", workers, got, want)
		}
	}
}
