package figures

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"dresar/internal/core"
)

// TestSweepNMatchesSerial pins the parallel sweep's core guarantee:
// whatever the pool width, every cell's Result is bit-identical to a
// serial run, because each cell owns its whole machine (engine, RNG,
// message pool, topology). A small app × size subset keeps the test in
// the default suite; one scientific and one trace-driven app covers
// both simulator kinds. Run with -race in CI (make test-race) to prove
// the workers really share no state.
func TestSweepNMatchesSerial(t *testing.T) {
	apps := []string{"fft", "tpcc"}
	sizes := []int{0, 512}

	want := map[string]map[int]Result{}
	for _, app := range apps {
		want[app] = map[int]Result{}
		for _, n := range sizes {
			r, err := RunOne(app, ScaleSmall, n)
			if err != nil {
				t.Fatalf("RunOne(%s, %d): %v", app, n, err)
			}
			want[app][n] = r
		}
	}

	for _, workers := range []int{1, 2, 4, 16} {
		got, err := SweepN(ScaleSmall, apps, sizes, workers)
		if err != nil {
			t.Fatalf("SweepN(workers=%d): %v", workers, err)
		}
		for _, app := range apps {
			for _, n := range sizes {
				if got[app][n] != want[app][n] {
					t.Errorf("workers=%d %s/%d diverges from serial:\n got %+v\nwant %+v",
						workers, app, n, got[app][n], want[app][n])
				}
			}
		}
	}
}

// TestSweepNCanonicalError: when several cells fail, the error must be
// the canonically (apps, sizes) first one regardless of which worker
// finished first, so failures replay identically.
func TestSweepNCanonicalError(t *testing.T) {
	apps := []string{"no-such-app-a", "no-such-app-b"}
	sizes := []int{0, 256}
	for _, workers := range []int{1, 4} {
		_, err := SweepN(ScaleSmall, apps, sizes, workers)
		if err == nil {
			t.Fatalf("workers=%d: want error for unknown apps", workers)
		}
		want := fmt.Sprintf("%s/%d: ", apps[0], sizes[0])
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Errorf("workers=%d: error %q does not lead with canonical first cell %q", workers, got, want)
		}
	}
}

// TestSweepCtxCancelled: a cancelled context aborts the sweep with a
// typed *core.AbortError — every cell either stops cooperatively or
// never starts — instead of running the full sweep.
func TestSweepCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the sweep begins
	_, err := SweepCtx(ctx, ScaleSmall, []string{"fft", "tpcc"}, []int{0, 512}, 2)
	if err == nil {
		t.Fatalf("cancelled sweep returned no error")
	}
	var abort *core.AbortError
	if !errors.As(err, &abort) {
		t.Fatalf("cancelled sweep returned %v, want wrapped *core.AbortError", err)
	}
}

// TestSweepCtxPanicRecovered: a panic inside one cell must not crash
// the process (the serving layer shares it with every other job); it
// surfaces as the sweep's canonical *CellPanic error, beating any
// abort errors from sibling cells.
func TestSweepCtxPanicRecovered(t *testing.T) {
	runCellHook = func(app string, entries int) {
		if app == "fft" && entries == 512 {
			panic("injected cell failure")
		}
	}
	defer func() { runCellHook = nil }()
	for _, workers := range []int{1, 4} {
		_, err := SweepN(ScaleSmall, []string{"fft"}, []int{0, 512}, workers)
		if err == nil {
			t.Fatalf("workers=%d: sweep with panicking cell returned no error", workers)
		}
		var cp *CellPanic
		if !errors.As(err, &cp) {
			t.Fatalf("workers=%d: error %v, want wrapped *CellPanic", workers, err)
		}
		if cp.App != "fft" || cp.Entries != 512 {
			t.Fatalf("panic attributed to %s/%d, want fft/512", cp.App, cp.Entries)
		}
		if !strings.Contains(cp.Value.(string), "injected") || cp.Stack == "" {
			t.Fatalf("CellPanic lost the panic value or stack: %+v", cp.Value)
		}
	}
}
