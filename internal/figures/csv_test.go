package figures

import (
	"strings"
	"testing"
)

func TestSweepCSV(t *testing.T) {
	sweep := map[string]map[int]Result{
		"fft": {
			0:    {App: "fft", Entries: 0, Reads: 100, CtoCHome: 50, AvgReadLat: 20, ReadStall: 1000, ExecCycles: 9000},
			1024: {App: "fft", Entries: 1024, Reads: 100, CtoCHome: 25, AvgReadLat: 16, ReadStall: 800, ExecCycles: 8100},
		},
	}
	csv := SweepCSV(sweep)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "app,entries,") {
		t.Fatalf("header: %s", lines[0])
	}
	if !strings.Contains(lines[2], "0.5000") {
		t.Fatalf("normalized CtoC missing: %s", lines[2])
	}
	if !strings.Contains(lines[2], "0.9000") {
		t.Fatalf("normalized exec missing: %s", lines[2])
	}
}

func TestFig2CSV(t *testing.T) {
	rows := [][3]float64{{0.1, 0.7, 0.75}, {1.0, 1.0, 1.0}}
	csv := Fig2CSV(rows)
	if !strings.Contains(csv, "0.1000,0.7000,0.7500") {
		t.Fatalf("csv:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 3 {
		t.Fatalf("csv rows:\n%s", csv)
	}
}
