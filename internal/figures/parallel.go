package figures

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// cell names one (app, entries) simulation of a sweep.
type cell struct {
	app     string
	entries int
}

// SweepN runs every (app, size) cell like Sweep, fanning the cells out
// over a bounded pool of workers goroutines (workers <= 0 uses
// GOMAXPROCS; 1 degenerates to a serial run). Each cell builds its own
// Machine with its own engine, RNG, and message pool, so runs share no
// state and every cell's Result is bit-identical to a serial run; only
// wall-clock time changes. Results are merged in canonical (apps,
// sizes) order, and when several cells fail the error reported is the
// canonically first one, so failures replay identically too.
func SweepN(scale Scale, apps []string, sizes []int, workers int) (map[string]map[int]Result, error) {
	cells := make([]cell, 0, len(apps)*len(sizes))
	for _, app := range apps {
		for _, n := range sizes {
			cells = append(cells, cell{app, n})
		}
	}
	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				results[i], errs[i] = RunOne(cells[i].app, scale, cells[i].entries)
			}
		}()
	}
	wg.Wait()
	out := map[string]map[int]Result{}
	for i, c := range cells {
		if errs[i] != nil {
			return nil, fmt.Errorf("%s/%d: %w", c.app, c.entries, errs[i])
		}
		if out[c.app] == nil {
			out[c.app] = map[int]Result{}
		}
		out[c.app][c.entries] = results[i]
	}
	return out, nil
}
