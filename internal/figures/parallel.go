package figures

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"dresar/internal/core"
)

// cell names one (app, entries) simulation of a sweep.
type cell struct {
	app     string
	entries int
}

// CellPanic reports a panic raised while simulating one sweep cell.
// SweepCtx recovers it into the canonical-error path so one broken
// cell fails its sweep with a structured error instead of crashing
// the whole process (a long-running server must survive a model bug
// in a single job).
type CellPanic struct {
	App     string
	Entries int
	Value   any
	Stack   string
}

func (p *CellPanic) Error() string {
	return fmt.Sprintf("figures: panic in cell %s/%d: %v\n%s", p.App, p.Entries, p.Value, p.Stack)
}

// runCellHook, when non-nil, runs at the top of every cell; the
// package tests use it to inject failures (panics) into chosen cells.
var runCellHook func(app string, entries int)

// runCell executes one cell, converting a panic anywhere under it —
// workload construction, machine wiring, the simulation itself — into
// a *CellPanic error.
func runCell(ctx context.Context, app string, scale Scale, entries int) (r Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &CellPanic{App: app, Entries: entries, Value: p, Stack: string(debug.Stack())}
		}
	}()
	if runCellHook != nil {
		runCellHook(app, entries)
	}
	return RunOneCtx(ctx, app, scale, entries)
}

// SweepN runs every (app, size) cell like Sweep, fanning the cells out
// over a bounded pool of workers goroutines (workers <= 0 uses
// GOMAXPROCS; 1 degenerates to a serial run). Each cell builds its own
// Machine with its own engine, RNG, and message pool, so runs share no
// state and every cell's Result is bit-identical to a serial run; only
// wall-clock time changes. Results are merged in canonical (apps,
// sizes) order, and when several cells fail the error reported is the
// canonically first one, so failures replay identically too.
func SweepN(scale Scale, apps []string, sizes []int, workers int) (map[string]map[int]Result, error) {
	return SweepCtx(context.Background(), scale, apps, sizes, workers)
}

// SweepCtx is SweepN under a cancellation context. Cancelling ctx (or
// its deadline passing) stops every running cell cooperatively —
// serial cells within a few events, sharded cells within one lookahead
// quantum — skips cells not yet started, and returns an error wrapping
// *core.AbortError. A cell that panics is recovered into a *CellPanic
// error rather than taking down the caller; when both real failures
// and aborts are present the canonically first real failure wins (an
// abort is a consequence of the cancellation, not its cause).
func SweepCtx(ctx context.Context, scale Scale, apps []string, sizes []int, workers int) (map[string]map[int]Result, error) {
	cells := make([]cell, 0, len(apps)*len(sizes))
	for _, app := range apps {
		for _, n := range sizes {
			cells = append(cells, cell{app, n})
		}
	}
	results := make([]Result, len(cells))
	errs := make([]error, len(cells))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if ctx.Err() != nil {
					// Cancelled before this cell started: record the
					// same typed abort a running cell would produce.
					errs[i] = fmt.Errorf("%s/%d not started: %w",
						cells[i].app, cells[i].entries, &core.AbortError{})
					continue
				}
				results[i], errs[i] = runCell(ctx, cells[i].app, scale, cells[i].entries)
			}
		}()
	}
	wg.Wait()
	// Canonical error selection: first non-abort failure if any exists
	// (deterministic replay of real failures), else the first abort.
	var firstAbort error
	for i, c := range cells {
		if errs[i] == nil {
			continue
		}
		var abort *core.AbortError
		if errors.As(errs[i], &abort) {
			if firstAbort == nil {
				firstAbort = fmt.Errorf("%s/%d: %w", c.app, c.entries, errs[i])
			}
			continue
		}
		return nil, fmt.Errorf("%s/%d: %w", c.app, c.entries, errs[i])
	}
	if firstAbort != nil {
		return nil, firstAbort
	}
	out := map[string]map[int]Result{}
	for i, c := range cells {
		if out[c.app] == nil {
			out[c.app] = map[int]Result{}
		}
		out[c.app][c.entries] = results[i]
	}
	return out, nil
}
