package figures

import (
	"strings"
	"testing"
)

func TestScientificWorkloadScales(t *testing.T) {
	for _, app := range []string{"fft", "tc", "sor", "fwa", "gauss"} {
		for _, sc := range []Scale{ScaleSmall, ScalePaper} {
			w, err := ScientificWorkload(app, sc)
			if err != nil {
				t.Fatal(err)
			}
			if w.Procs() != 16 {
				t.Fatalf("%s/%v: procs = %d", app, sc, w.Procs())
			}
		}
	}
	if _, err := ScientificWorkload("bogus", ScaleSmall); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunOneCommercialAndScientific(t *testing.T) {
	sci, err := RunOne("tc", ScaleSmall, 512)
	if err != nil {
		t.Fatal(err)
	}
	if sci.CtoCSwitch == 0 {
		t.Fatalf("tc with switch dirs served nothing: %+v", sci)
	}
	com, err := RunOne("tpcc", ScaleSmall, 512)
	if err != nil {
		t.Fatal(err)
	}
	if com.CtoCSwitch == 0 || com.ReadMisses == 0 {
		t.Fatalf("tpcc: %+v", com)
	}
}

func TestFig1SmallShape(t *testing.T) {
	text, data, err := Fig1(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Figure 1") {
		t.Fatal("missing title")
	}
	for _, app := range Apps {
		d, ok := data[app]
		if !ok {
			t.Fatalf("missing %s", app)
		}
		if d[0]+d[1] < 0.99 || d[0]+d[1] > 1.01 {
			t.Fatalf("%s fractions do not sum to 1: %v", app, d)
		}
		if d[1] <= 0 {
			t.Fatalf("%s has no dirty misses", app)
		}
	}
	// Shape: FFT is communication-intensive; TPC-D is dirtier than
	// TPC-C (paper: 62%% vs 38%%).
	if data["tpcd"][1] <= data["tpcc"][1] {
		t.Fatalf("TPC-D dirty share (%.2f) must exceed TPC-C (%.2f)", data["tpcd"][1], data["tpcc"][1])
	}
	if data["fft"][1] < 0.3 {
		t.Fatalf("FFT dirty share = %.2f, want communication-intensive", data["fft"][1])
	}
}

func TestFig2Monotone(t *testing.T) {
	text, rows, err := Fig2(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Figure 2") {
		t.Fatal("missing title")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1] < rows[i-1][1] || rows[i][2] < rows[i-1][2] {
			t.Fatalf("CDF not monotone at %d: %v", i, rows)
		}
	}
	last := rows[len(rows)-1]
	if last[1] < 0.999 || last[2] < 0.999 {
		t.Fatalf("CDF does not reach 1: %v", last)
	}
	// Skew: top 10%% of blocks must carry most CtoCs.
	for _, r := range rows {
		if r[0] == 0.10 && r[2] < 0.5 {
			t.Fatalf("top-10%% CtoC share = %.2f, want skewed", r[2])
		}
	}
}

func TestSweepAndNormalizedFigures(t *testing.T) {
	// A small two-app, two-size sweep exercises the whole path.
	sweep, err := Sweep(ScaleSmall, []string{"fft", "tpcc"}, []int{0, 1024})
	if err != nil {
		t.Fatal(err)
	}
	for _, render := range []func(map[string]map[int]Result) string{Fig8, Fig9, Fig10, Fig11} {
		out := render(sweep)
		if !strings.Contains(out, "fft") || !strings.Contains(out, "tpcc") {
			t.Fatalf("missing rows:\n%s", out)
		}
	}
	// Shape: switch directories reduce home CtoC on both.
	for _, app := range []string{"fft", "tpcc"} {
		base := sweep[app][0]
		sd := sweep[app][1024]
		if sd.CtoCHome >= base.CtoCHome {
			t.Fatalf("%s: home CtoC not reduced: %d -> %d", app, base.CtoCHome, sd.CtoCHome)
		}
		if sd.AvgReadLat >= base.AvgReadLat {
			t.Fatalf("%s: read latency not reduced: %.1f -> %.1f", app, base.AvgReadLat, sd.AvgReadLat)
		}
		if sd.ExecCycles >= base.ExecCycles {
			t.Fatalf("%s: execution time not reduced: %d -> %d", app, base.ExecCycles, sd.ExecCycles)
		}
	}
}
