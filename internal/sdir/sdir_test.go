package sdir

import (
	"testing"

	"dresar/internal/mesg"
	"dresar/internal/sim"
	"dresar/internal/topo"
)

var tp16 = topo.MustNew(16, 4)

func newFab(t *testing.T, cfg Config) *Fabric {
	t.Helper()
	f, err := New(tp16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func top0() topo.SwitchID { return topo.SwitchID{Stage: 1, Index: 0} }

func wreply(addr uint64, owner int) *mesg.Message {
	return &mesg.Message{Kind: mesg.WriteReply, Addr: addr, Src: mesg.M(0), Dst: mesg.P(owner), Requester: owner}
}
func rreq(addr uint64, req int) *mesg.Message {
	return &mesg.Message{Kind: mesg.ReadReq, Addr: addr, Src: mesg.P(req), Dst: mesg.M(0), Requester: req}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(tp16, Config{Entries: 0}); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New(tp16, Config{Entries: 10, Ways: 4}); err == nil {
		t.Error("non-divisible entries accepted")
	}
	if _, err := New(tp16, Config{Entries: 24, Ways: 4}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	if _, err := New(tp16, DefaultConfig()); err != nil {
		t.Error(err)
	}
}

func TestWriteReplyInsertsOwnership(t *testing.T) {
	f := newFab(t, DefaultConfig())
	a := f.Snoop(top0(), wreply(0x40, 7), 0)
	if a.Sink || len(a.Generated) != 0 {
		t.Fatalf("insert action = %+v", a)
	}
	st, owner, _ := f.Lookup(top0(), 0x40)
	if st != Mod || owner != 7 {
		t.Fatalf("entry = %v owner=%d", st, owner)
	}
	if f.TotalStats().Inserts != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
	// The same message at a different switch inserts independently.
	leaf := topo.SwitchID{Stage: 0, Index: 1}
	f.Snoop(leaf, wreply(0x40, 7), 0)
	if st, _, _ := f.Lookup(leaf, 0x40); st != Mod {
		t.Fatal("second switch did not insert")
	}
}

func TestReadHitSinksAndGeneratesMarkedCtoC(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	a := f.Snoop(top0(), rreq(0x40, 3), 10)
	if !a.Sink {
		t.Fatal("read not sunk on MODIFIED hit")
	}
	if len(a.Generated) != 1 {
		t.Fatalf("generated = %v", a.Generated)
	}
	g := a.Generated[0]
	if g.Kind != mesg.CtoCReq || !g.Marked || g.Dst != mesg.P(7) || g.Requester != 3 {
		t.Fatalf("generated = %v", g)
	}
	st, _, vec := f.Lookup(top0(), 0x40)
	if st != Trans || !vec.Equal(mesg.NodeSetOf(3)) {
		t.Fatalf("entry after hit = %v vec=%v", st, vec)
	}
	if f.TotalStats().Hits != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestReadMissPasses(t *testing.T) {
	f := newFab(t, DefaultConfig())
	a := f.Snoop(top0(), rreq(0x40, 3), 0)
	if a.Sink || len(a.Generated) != 0 {
		t.Fatalf("miss action = %+v", a)
	}
}

func TestReadInTransientRetryPolicy(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 0)
	a := f.Snoop(top0(), rreq(0x40, 5), 1)
	if !a.Sink || len(a.Generated) != 1 || a.Generated[0].Kind != mesg.Retry {
		t.Fatalf("action = %+v", a)
	}
	if a.Generated[0].Dst != mesg.P(5) || !a.Generated[0].Marked {
		t.Fatalf("retry = %v", a.Generated[0])
	}
	if f.TotalStats().TransientHits != 1 || f.TotalStats().RetriesSent != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestReadInTransientBitVectorPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyBitVector
	f := newFab(t, cfg)
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 0)
	a := f.Snoop(top0(), rreq(0x40, 5), 1)
	if !a.Sink || len(a.Generated) != 0 {
		t.Fatalf("action = %+v", a)
	}
	_, _, vec := f.Lookup(top0(), 0x40)
	if !vec.Equal(mesg.NodeSetOf(3, 5)) {
		t.Fatalf("vec = %v", vec)
	}
	// The copyback serves the extra requester and carries its pid.
	cb := &mesg.Message{Kind: mesg.CopyBack, Addr: 0x40, Src: mesg.P(7), Dst: mesg.M(0), Requester: 3, Marked: true, Data: 42}
	a = f.Snoop(top0(), cb, 2)
	if len(a.Generated) != 1 {
		t.Fatalf("copyback generated = %v", a.Generated)
	}
	g := a.Generated[0]
	if g.Kind != mesg.ReadReply || g.Dst != mesg.P(5) || g.Data != 42 || !g.Marked {
		t.Fatalf("served = %v", g)
	}
	if !cb.Sharers.Equal(mesg.NodeSetOf(5)) {
		t.Fatalf("copyback sharers = %v", cb.Sharers)
	}
	if st, _, _ := f.Lookup(top0(), 0x40); st != Inv {
		t.Fatal("entry not released after copyback")
	}
	if f.TotalStats().ServedFromCB != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestWriteInvalidatesModified(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	w := &mesg.Message{Kind: mesg.WriteReq, Addr: 0x40, Src: mesg.P(2), Dst: mesg.M(0), Requester: 2}
	a := f.Snoop(top0(), w, 1)
	if a.Sink {
		t.Fatal("write to MODIFIED entry sunk; must pass to home")
	}
	if st, _, _ := f.Lookup(top0(), 0x40); st != Inv {
		t.Fatal("entry survived a write")
	}
}

func TestWriteInTransientNacked(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 0)
	w := &mesg.Message{Kind: mesg.WriteReq, Addr: 0x40, Src: mesg.P(2), Dst: mesg.M(0), Requester: 2}
	a := f.Snoop(top0(), w, 1)
	if !a.Sink || len(a.Generated) != 1 {
		t.Fatalf("action = %+v", a)
	}
	g := a.Generated[0]
	if g.Kind != mesg.Nack || !g.ForWrite || g.Dst != mesg.P(2) {
		t.Fatalf("nack = %v", g)
	}
	if f.TotalStats().WriteNacks != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestCtoCReqInvalidatesModifiedAndSinksInTransient(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	c := &mesg.Message{Kind: mesg.CtoCReq, Addr: 0x40, Src: mesg.M(0), Dst: mesg.P(7), Requester: 2}
	a := f.Snoop(top0(), c, 1)
	if a.Sink {
		t.Fatal("CtoC through MODIFIED entry sunk")
	}
	if st, _, _ := f.Lookup(top0(), 0x40); st != Inv {
		t.Fatal("entry survived a CtoC transfer")
	}
	// Rebuild, intercept a read, then a home CtoC forward must sink.
	f.Snoop(top0(), wreply(0x40, 7), 2)
	f.Snoop(top0(), rreq(0x40, 3), 3)
	a = f.Snoop(top0(), c, 4)
	if !a.Sink {
		t.Fatal("home CtoC forward not sunk in TRANSIENT")
	}
	if f.TotalStats().CtoCSunk != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestWriteBackInTransientServesRequester(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 1)
	wb := &mesg.Message{Kind: mesg.WriteBack, Addr: 0x40, Src: mesg.P(7), Dst: mesg.M(0), Requester: 7, Data: 99}
	a := f.Snoop(top0(), wb, 2)
	if a.Sink {
		t.Fatal("writeback sunk")
	}
	if len(a.Generated) != 1 {
		t.Fatalf("generated = %v", a.Generated)
	}
	g := a.Generated[0]
	if g.Kind != mesg.ReadReply || g.Dst != mesg.P(3) || g.Data != 99 || !g.Marked {
		t.Fatalf("served = %v", g)
	}
	// The writeback is marked and carries the requester to the home.
	if !wb.Marked || wb.Requester != 3 {
		t.Fatalf("writeback rewrite = %v", wb)
	}
	if st, _, _ := f.Lookup(top0(), 0x40); st != Inv {
		t.Fatal("entry not released")
	}
	if f.TotalStats().ServedFromWB != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestNoDataCopyBackClearsTransient(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 1)
	nd := &mesg.Message{Kind: mesg.CopyBack, Addr: 0x40, Src: mesg.P(7), Dst: mesg.M(0), Requester: 3, Marked: true, NoData: true}
	a := f.Snoop(top0(), nd, 2)
	if a.Sink {
		t.Fatal("NoData copyback sunk; it must clear every switch en route")
	}
	if len(a.Generated) != 1 || a.Generated[0].Kind != mesg.Retry || a.Generated[0].Dst != mesg.P(3) {
		t.Fatalf("generated = %v", a.Generated)
	}
	if st, _, _ := f.Lookup(top0(), 0x40); st != Inv {
		t.Fatal("transient entry survived NoData clear")
	}
}

func TestEvictionNeverTakesTransient(t *testing.T) {
	// 4 entries, 4 ways: one set. Fill it, make all transient, then an
	// insert must be abandoned.
	f := newFab(t, Config{Entries: 4, Ways: 4})
	for i := 0; i < 4; i++ {
		f.Snoop(top0(), wreply(uint64(i)*32, i), 0)
		f.Snoop(top0(), rreq(uint64(i)*32, 8+i), 1)
	}
	f.Snoop(top0(), wreply(0x1000, 5), 2)
	if st, _, _ := f.Lookup(top0(), 0x1000); st != Inv {
		t.Fatal("insert displaced a TRANSIENT entry")
	}
	if f.TotalStats().InsertBlocked != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
	// All four originals must still be transient.
	for i := 0; i < 4; i++ {
		if st, _, _ := f.Lookup(top0(), uint64(i)*32); st != Trans {
			t.Fatalf("entry %d lost", i)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	f := newFab(t, Config{Entries: 2, Ways: 2})
	f.Snoop(top0(), wreply(0x00, 1), 0)
	f.Snoop(top0(), wreply(0x20, 2), 1)
	f.Snoop(top0(), wreply(0x40, 3), 2) // evicts 0x00 (LRU)
	if st, _, _ := f.Lookup(top0(), 0x00); st != Inv {
		t.Fatal("LRU not evicted")
	}
	if st, _, _ := f.Lookup(top0(), 0x20); st != Mod {
		t.Fatal("MRU evicted")
	}
	if f.TotalStats().Evictions != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestPortContention(t *testing.T) {
	f := newFab(t, DefaultConfig()) // 2 ports
	delays := make([]uint64, 5)
	for i := range delays {
		a := f.Snoop(top0(), rreq(uint64(0x1000+i*32), i), 100)
		delays[i] = uint64(a.ExtraDelay)
	}
	// First two free, next two +1, fifth +2.
	want := []uint64{0, 0, 1, 1, 2}
	for i := range want {
		if delays[i] != want[i] {
			t.Fatalf("delays = %v, want %v", delays, want)
		}
	}
	// A new cycle resets the budget.
	a := f.Snoop(top0(), rreq(0x2000, 1), 101)
	if a.ExtraDelay != 0 {
		t.Fatalf("delay after cycle advance = %d", a.ExtraDelay)
	}
	if f.TotalStats().PortDelayTotal != 4 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestPendingBufferSkipsMainPorts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingEntries = 8
	f := newFab(t, cfg)
	// Saturate the main ports with reads in one cycle.
	for i := 0; i < 4; i++ {
		f.Snoop(top0(), rreq(uint64(0x1000+i*32), i), 50)
	}
	// A writeback in the same cycle uses the pending buffer: no delay.
	wb := &mesg.Message{Kind: mesg.WriteBack, Addr: 0x5000, Src: mesg.P(1), Dst: mesg.M(0), Data: 1}
	if a := f.Snoop(top0(), wb, 50); a.ExtraDelay != 0 {
		t.Fatalf("transient-only kind charged main-port delay %d", a.ExtraDelay)
	}
	// Without the pending buffer it is charged.
	f2 := newFab(t, DefaultConfig())
	for i := 0; i < 4; i++ {
		f2.Snoop(top0(), rreq(uint64(0x1000+i*32), i), 50)
	}
	if a := f2.Snoop(top0(), wb, 50); a.ExtraDelay == 0 {
		t.Fatal("main-array design should charge port delay")
	}
}

func TestPendingBufferCapacityLimitsInterceptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PendingEntries = 2
	f := newFab(t, cfg)
	for i := 0; i < 3; i++ {
		f.Snoop(top0(), wreply(uint64(i)*32, i), 0)
	}
	a1 := f.Snoop(top0(), rreq(0x00, 8), 1)
	a2 := f.Snoop(top0(), rreq(0x20, 9), 2)
	a3 := f.Snoop(top0(), rreq(0x40, 10), 3)
	if !a1.Sink || !a2.Sink {
		t.Fatal("first two interceptions failed")
	}
	if a3.Sink {
		t.Fatal("third interception exceeded pending buffer capacity")
	}
	if f.TotalStats().PendingFull != 1 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
	if f.TransientCount(top0()) != 2 {
		t.Fatalf("transient count = %d", f.TransientCount(top0()))
	}
}

func TestStageMaskRestrictsPlacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StageMask = 1 << 1 // top stage only
	f := newFab(t, cfg)
	leaf := topo.SwitchID{Stage: 0, Index: 0}
	f.Snoop(leaf, wreply(0x40, 1), 0)
	if st, _, _ := f.Lookup(leaf, 0x40); st != Inv {
		t.Fatal("leaf stored an entry despite mask")
	}
	f.Snoop(top0(), wreply(0x40, 1), 0)
	if st, _, _ := f.Lookup(top0(), 0x40); st != Mod {
		t.Fatal("top stage inactive")
	}
}

func TestRetryFanOutBitVector(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyBitVector
	f := newFab(t, cfg)
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 1)
	f.Snoop(top0(), rreq(0x40, 5), 2)
	r := &mesg.Message{Kind: mesg.Retry, Addr: 0x40, Src: mesg.M(0), Dst: mesg.P(3), Requester: 3}
	a := f.Snoop(top0(), r, 3)
	if len(a.Generated) != 1 || a.Generated[0].Dst != mesg.P(5) {
		t.Fatalf("retry fan-out = %v", a.Generated)
	}
}

func TestInsertDoesNotClobberTransient(t *testing.T) {
	f := newFab(t, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 1)
	f.Snoop(top0(), wreply(0x40, 9), 2)
	st, _, vec := f.Lookup(top0(), 0x40)
	if st != Trans || !vec.Equal(mesg.NodeSetOf(3)) {
		t.Fatalf("transient clobbered: %v vec=%v", st, vec)
	}
}

func TestActionlessKinds(t *testing.T) {
	f := newFab(t, DefaultConfig())
	// A ForWrite writeback (ownership ack) invalidates M entries only.
	f.Snoop(top0(), wreply(0x40, 7), 0)
	wb := &mesg.Message{Kind: mesg.WriteBack, Addr: 0x40, Src: mesg.P(7), Dst: mesg.M(0), ForWrite: true}
	a := f.Snoop(top0(), wb, 1)
	if a.Sink || len(a.Generated) != 0 {
		t.Fatalf("action = %+v", a)
	}
	if st, _, _ := f.Lookup(top0(), 0x40); st != Inv {
		t.Fatal("ownership ack did not invalidate")
	}
}

func TestPolicyAndStateStrings(t *testing.T) {
	if PolicyRetry.String() != "retry" || PolicyBitVector.String() != "bitvector" {
		t.Fatal("policy strings")
	}
	if Inv.String() != "INVALID" || Mod.String() != "MODIFIED" || Trans.String() != "TRANSIENT" {
		t.Fatal("state strings")
	}
}

func BenchmarkSnoopHit(b *testing.B) {
	f := MustNew(tp16, DefaultConfig())
	f.Snoop(top0(), wreply(0x40, 7), 0)
	m := rreq(0x40, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Snoop(top0(), m, 0)
		// Reset to MODIFIED for the next hit.
		d := f.dirs[tp16.SwitchOrdinal(top0())]
		if e := d.find(0x40); e != nil {
			e.state = Mod
			d.pendingCount = 0
		}
	}
}

func TestPerStageHitAccounting(t *testing.T) {
	f := newFab(t, DefaultConfig())
	leaf := topo.SwitchID{Stage: 0, Index: 0}
	// Top-stage interception.
	f.Snoop(top0(), wreply(0x40, 7), 0)
	f.Snoop(top0(), rreq(0x40, 3), 1)
	// Leaf-stage interception (owner and requester share leaf 0).
	f.Snoop(leaf, wreply(0x80, 1), 2)
	f.Snoop(leaf, rreq(0x80, 2), 3)
	if f.TotalStats().TopHits != 1 || f.TotalStats().LeafHits != 1 || f.TotalStats().Hits != 2 {
		t.Fatalf("stats %+v", f.TotalStats())
	}
}

func TestRandomOpsNeverExceedCapacity(t *testing.T) {
	// Property: arbitrary snoop streams never panic, never hold more
	// valid entries than capacity, and keep the pending count within
	// bounds.
	rng := sim.NewRNG(77)
	cfg := Config{Entries: 16, Ways: 4, PendingEntries: 4}
	f := MustNew(tp16, cfg)
	sws := []topo.SwitchID{{Stage: 0, Index: 0}, {Stage: 1, Index: 0}, {Stage: 1, Index: 3}}
	kinds := []mesg.Kind{mesg.WriteReply, mesg.ReadReq, mesg.WriteReq, mesg.CtoCReq, mesg.CopyBack, mesg.WriteBack, mesg.Retry}
	for i := 0; i < 20000; i++ {
		m := &mesg.Message{
			Kind:      kinds[rng.Intn(len(kinds))],
			Addr:      uint64(rng.Intn(64)) * 32,
			Src:       mesg.P(rng.Intn(16)),
			Dst:       mesg.M(rng.Intn(16)),
			Requester: rng.Intn(16),
			Owner:     rng.Intn(16),
			Marked:    rng.Intn(4) == 0,
			NoData:    rng.Intn(16) == 0,
			ForWrite:  rng.Intn(8) == 0,
			Data:      uint64(i),
		}
		sw := sws[rng.Intn(len(sws))]
		f.Snoop(sw, m, sim.Cycle(i))
		if tc := f.TransientCount(sw); tc > cfg.PendingEntries {
			t.Fatalf("op %d: transient count %d exceeds pending buffer %d", i, tc, cfg.PendingEntries)
		}
		// Count valid entries at this switch.
		valid := 0
		for b := uint64(0); b < 64; b++ {
			if st, _, _ := f.Lookup(sw, b*32); st != Inv {
				valid++
			}
		}
		if valid > cfg.Entries {
			t.Fatalf("op %d: %d valid entries exceed capacity %d", i, valid, cfg.Entries)
		}
	}
}
