// Package sdir implements DRESAR, the DiRectory Embedded Switch
// ARchitecture of Sections 3 and 4: a small set-associative SRAM
// directory cache inside every crossbar switch that captures ownership
// information from passing write replies and re-routes subsequent read
// requests straight to the owner's cache, skipping the home node's
// DRAM directory, its controller occupancy, and the extra network
// hops.
//
// The per-block state machine is Figure 4: entries move between
// INVALID, MODIFIED (owner known) and TRANSIENT (a switch-initiated
// cache-to-cache transfer is in flight). Both of the paper's policies
// for reads that hit a TRANSIENT entry are implemented: bounce the
// requester with a Retry (the paper's choice, PolicyRetry) or
// accumulate requester pids in a bit vector and serve them from the
// copyback/writeback data (PolicyBitVector).
//
// Port contention is modeled after the hardware design: a 2-way
// multiported directory serves two snoops per cycle (four messages in
// the 4-cycle switch window); extra messages in the same cycle are
// delayed. The 8×8 design's pending buffer is supported: when enabled,
// transient-state-only message kinds (CtoC, CopyBack, WriteBack,
// Retry) consult the replication-cheap pending buffer and do not
// consume main-directory ports.
package sdir

import (
	"fmt"

	"dresar/internal/check"
	"dresar/internal/mesg"
	"dresar/internal/sim"
	"dresar/internal/topo"
	"dresar/internal/xbar"
)

// Policy selects the read-in-TRANSIENT behaviour.
type Policy uint8

const (
	// PolicyRetry bounces a read that hits a TRANSIENT entry back to
	// the requester (the paper's design choice: communication
	// intensive blocks have few sharers).
	PolicyRetry Policy = iota
	// PolicyBitVector records the requester in the entry's bit vector;
	// the requesters are served from the copyback or writeback data
	// when it passes the switch.
	PolicyBitVector
)

func (p Policy) String() string {
	if p == PolicyRetry {
		return "retry"
	}
	return "bitvector"
}

// EntryState is the Figure 4 per-block switch-directory state.
type EntryState uint8

const (
	// Inv means not present.
	Inv EntryState = iota
	// Mod means the block is dirty at Owner.
	Mod
	// Trans means this switch initiated a CtoC transfer and awaits the
	// copyback/writeback.
	Trans
)

func (s EntryState) String() string {
	switch s {
	case Inv:
		return "INVALID"
	case Mod:
		return "MODIFIED"
	case Trans:
		return "TRANSIENT"
	}
	return fmt.Sprintf("EntryState(%d)", uint8(s))
}

// Config parameterizes every switch directory in the fabric.
type Config struct {
	// Entries is the total entry count per switch (256–2048 in the
	// evaluation; 0 disables the directory entirely).
	Entries int
	// Ways is the set associativity (4 in the evaluation).
	Ways int
	// Policy is the read-in-TRANSIENT policy.
	Policy Policy
	// SnoopPorts is the number of directory lookups per cycle (2 in
	// the DRESAR design: a 2-way multiported SRAM).
	SnoopPorts int
	// PendingEntries enables the 8×8 design's pending buffer: a small
	// multiported store for TRANSIENT blocks (8–16 entries). 0 keeps
	// every lookup on the main array. When enabled, TRANSIENT blocks
	// live in the pending buffer and transient-only message kinds do
	// not consume main-directory ports.
	PendingEntries int
	// StageMask selects which BMIN stages carry directories: bit s set
	// means stage s participates. 0 means all stages.
	StageMask uint
}

// DefaultConfig returns the evaluation's 1K-entry 4-way configuration.
func DefaultConfig() Config {
	return Config{Entries: 1024, Ways: 4, Policy: PolicyRetry, SnoopPorts: 2}
}

// Stats aggregates switch-directory counters. Each switch's directory
// keeps its own instance (so shards never share a counter cache line
// under sharded execution); TotalStats folds them into the fabric-wide
// roll-up the figures read.
type Stats struct {
	Inserts        uint64 // entries created by write replies
	Hits           uint64 // reads intercepted in MODIFIED state
	LeafHits       uint64 // interceptions at stage 0 (intra-cluster)
	TopHits        uint64 // interceptions at stage 1 (memory side)
	TransientHits  uint64 // reads arriving in TRANSIENT state
	RetriesSent    uint64
	BitVectorAdds  uint64
	ServedFromCB   uint64 // bit-vector requesters served from copyback data
	ServedFromWB   uint64 // requesters served from writeback data (TRANSIENT)
	WriteNacks     uint64 // writes bounced in TRANSIENT state
	CtoCSunk       uint64 // home CtoC requests sunk in TRANSIENT state
	Invalidates    uint64 // entries killed by writes/writebacks/copybacks
	Evictions      uint64 // entries displaced by inserts
	InsertBlocked  uint64 // inserts abandoned (set full of TRANSIENT)
	PendingFull    uint64 // interceptions abandoned (pending buffer full)
	PortDelayTotal uint64 // cycles of directory-port contention charged
	Bypassed       uint64 // snoops skipped at disabled (faulty) directories

	// Switch-loss accounting (FailOrdinal): a killed switch takes its
	// directory SRAM with it.
	EntriesLost   uint64 // live entries destroyed by switch failures
	PendingLost   uint64 // TRANSIENT entries (pending transfers) destroyed
	HomeFallbacks uint64 // intercepted requesters re-homed after a switch loss
}

// add folds o into s.
func (s *Stats) add(o *Stats) {
	s.Inserts += o.Inserts
	s.Hits += o.Hits
	s.LeafHits += o.LeafHits
	s.TopHits += o.TopHits
	s.TransientHits += o.TransientHits
	s.RetriesSent += o.RetriesSent
	s.BitVectorAdds += o.BitVectorAdds
	s.ServedFromCB += o.ServedFromCB
	s.ServedFromWB += o.ServedFromWB
	s.WriteNacks += o.WriteNacks
	s.CtoCSunk += o.CtoCSunk
	s.Invalidates += o.Invalidates
	s.Evictions += o.Evictions
	s.InsertBlocked += o.InsertBlocked
	s.PendingFull += o.PendingFull
	s.PortDelayTotal += o.PortDelayTotal
	s.Bypassed += o.Bypassed
	s.EntriesLost += o.EntriesLost
	s.PendingLost += o.PendingLost
	s.HomeFallbacks += o.HomeFallbacks
}

// entry is one directory line.
type entry struct {
	tag    uint64
	state  EntryState
	owner  int
	reqVec mesg.NodeSet // intercepted requesters (first + bit-vector policy)
	lru    uint64
}

// dir is one switch's directory instance.
type dir struct {
	sets  [][]entry
	nsets uint64
	clock uint64

	// port accounting: snoops already charged in the current cycle.
	portCycle sim.Cycle
	portUsed  int

	// pendingCount tracks resident TRANSIENT entries. The pending-
	// buffer mode bounds interceptions with it; the disabled-directory
	// drain path uses it to know when the last obligation resolved.
	pendingCount int

	// stats is this switch's share of the fabric roll-up; only the
	// shard running the switch ever touches it.
	stats Stats
}

// Fabric implements xbar.Snooper for every switch in a topology.
type Fabric struct {
	cfg      Config
	tp       *topo.T
	dirs     []*dir
	disabled []bool // per-switch faulty flag: bypassed, draining only
	failed   []bool // per-switch dead flag: bypassed entirely, state lost

	// Fail, when set, receives a structured *check.ProtocolError when a
	// message the directory state machine cannot handle reaches it,
	// instead of panicking (mirrors dirctl.Controller.Fail).
	Fail func(error)
}

// protoFail reports an unhandled snooped message through Fail, or
// panics when no sink is installed.
func (f *Fabric) protoFail(sw topo.SwitchID, m *mesg.Message) {
	err := &check.ProtocolError{
		Where: fmt.Sprintf("sdir %v", sw),
		Op:    "unhandled snooped message kind", Msg: m.String(),
	}
	if f.Fail == nil {
		panic(err.Error())
	}
	f.Fail(err)
}

// New builds the switch-directory fabric for tp.
func New(tp *topo.T, cfg Config) (*Fabric, error) {
	if cfg.Entries == 0 {
		return nil, fmt.Errorf("sdir: zero entries; omit the snooper instead")
	}
	if cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		return nil, fmt.Errorf("sdir: %d entries not divisible into %d ways", cfg.Entries, cfg.Ways)
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("sdir: set count %d not a power of two", nsets)
	}
	if cfg.SnoopPorts <= 0 {
		cfg.SnoopPorts = 2
	}
	f := &Fabric{cfg: cfg, tp: tp, dirs: make([]*dir, tp.NumSwitches()),
		disabled: make([]bool, tp.NumSwitches()), failed: make([]bool, tp.NumSwitches())}
	for i := range f.dirs {
		d := &dir{sets: make([][]entry, nsets), nsets: uint64(nsets)}
		for s := range d.sets {
			d.sets[s] = make([]entry, cfg.Ways)
		}
		f.dirs[i] = d
	}
	return f, nil
}

// MustNew panics on error.
func MustNew(tp *topo.T, cfg Config) *Fabric {
	f, err := New(tp, cfg)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *Fabric) active(sw topo.SwitchID) bool {
	if f.cfg.StageMask == 0 {
		return true
	}
	return f.cfg.StageMask&(1<<uint(sw.Stage)) != 0
}

func (d *dir) set(addr uint64) []entry { return d.sets[(addr>>5)%d.nsets] }

func (d *dir) find(addr uint64) *entry {
	set := d.set(addr)
	for i := range set {
		if set[i].state != Inv && set[i].tag == addr {
			return &set[i]
		}
	}
	return nil
}

// chargePort models the 2-way multiported SRAM: the first SnoopPorts
// lookups in a cycle are free; later ones wait.
func (f *Fabric) chargePort(d *dir, now sim.Cycle) sim.Cycle {
	if d.portCycle != now {
		d.portCycle = now
		d.portUsed = 0
	}
	d.portUsed++
	delay := sim.Cycle((d.portUsed - 1) / f.cfg.SnoopPorts)
	d.stats.PortDelayTotal += uint64(delay)
	return delay
}

// transientOnly reports whether kind needs only the TRANSIENT check
// (serviceable by the pending buffer in the 8×8 design).
func transientOnly(k mesg.Kind) bool {
	switch k {
	case mesg.CtoCReq, mesg.CopyBack, mesg.WriteBack, mesg.Retry:
		return true
	case mesg.ReadReq, mesg.ReadReply, mesg.WriteReq, mesg.WriteReply,
		mesg.CtoCReply, mesg.Inval, mesg.InvalAck, mesg.WBAck, mesg.Nack:
		// Reads/writes/write-replies need full directory service; the
		// rest never reach a directory (SnoopsSwitchDir is false).
		return false
	}
	return false
}

// Snoop implements xbar.Snooper: the heart of the DRESAR protocol.
// Kinds outside Table 1 bypass the directory entirely.
//
// A directory flagged faulty (Disable) is bypassed: it inserts
// nothing, intercepts nothing, and charges no port contention, so all
// traffic through the switch falls back to the base home protocol.
// The only messages it still processes are the TRANSIENT-draining
// kinds (CtoCReq, CopyBack, WriteBack, Retry), so transfers the
// directory initiated before the fault resolve their obligations
// instead of orphaning their waiting requesters.
func (f *Fabric) Snoop(sw topo.SwitchID, m *mesg.Message, now sim.Cycle) xbar.Action {
	if !m.Kind.SnoopsSwitchDir() || !f.active(sw) {
		return xbar.Action{}
	}
	ord := f.tp.SwitchOrdinal(sw)
	d := f.dirs[ord]
	if f.failed[ord] {
		// A dead switch has no directory left at all: nothing to drain,
		// nothing to intercept. (The xbar also stops snooping at dead
		// switches; this guard covers fabrics driven without one.)
		d.stats.Bypassed++
		return xbar.Action{}
	}
	if f.disabled[ord] {
		d.stats.Bypassed++
		if !transientOnly(m.Kind) || d.pendingCount == 0 {
			return xbar.Action{}
		}
		return f.process(d, sw, m)
	}
	var delay sim.Cycle
	if f.cfg.PendingEntries == 0 || !transientOnly(m.Kind) {
		delay = f.chargePort(d, now)
	}
	act := f.process(d, sw, m)
	act.ExtraDelay += delay
	return act
}

func (f *Fabric) process(d *dir, sw topo.SwitchID, m *mesg.Message) xbar.Action {
	switch m.Kind {
	case mesg.WriteReply:
		f.insert(d, m)
		return xbar.Action{}
	case mesg.ReadReq:
		return f.readReq(d, sw, m)
	case mesg.WriteReq:
		return f.writeReq(d, m)
	case mesg.CtoCReq:
		return f.ctocReq(d, m)
	case mesg.CopyBack:
		return f.copyBack(d, m)
	case mesg.WriteBack:
		return f.writeBack(d, m)
	case mesg.Retry:
		return f.retry(d, m)
	case mesg.ReadReply, mesg.CtoCReply, mesg.Inval, mesg.InvalAck,
		mesg.WBAck, mesg.Nack:
		// Unreachable: Snoop admits only SnoopsSwitchDir kinds. Listed
		// so a new snoopable kind fails kindswitch until it is wired in.
		f.protoFail(sw, m)
		return xbar.Action{}
	}
	return xbar.Action{}
}

// insert records ownership from a passing write reply (home → writer).
func (f *Fabric) insert(d *dir, m *mesg.Message) {
	if e := d.find(m.Addr); e != nil {
		if e.state == Trans {
			// An in-flight transfer still owns this entry; do not
			// clobber its obligations. (Rare: the home granted new
			// ownership while our copyback is still travelling.)
			d.stats.InsertBlocked++
			return
		}
		d.clock++
		e.state, e.owner, e.reqVec, e.lru = Mod, m.Requester, mesg.NodeSet{}, d.clock
		return
	}
	set := d.set(m.Addr)
	var victim *entry
	for i := range set {
		if set[i].state == Inv {
			victim = &set[i]
			break
		}
		if set[i].state == Trans {
			continue // never evict TRANSIENT
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	if victim == nil {
		d.stats.InsertBlocked++
		return
	}
	if victim.state != Inv {
		d.stats.Evictions++
	}
	d.clock++
	*victim = entry{tag: m.Addr, state: Mod, owner: m.Requester, lru: d.clock}
	d.stats.Inserts++
}

// readReq intercepts reads to blocks with known dirty owners.
func (f *Fabric) readReq(d *dir, sw topo.SwitchID, m *mesg.Message) xbar.Action {
	e := d.find(m.Addr)
	if e == nil {
		return xbar.Action{}
	}
	switch e.state {
	case Inv:
		// Unreachable: find never returns INVALID entries.
	case Mod:
		// Re-route: sink the read, fire a marked CtoC request at the
		// owner, go TRANSIENT until the copyback passes.
		if f.cfg.PendingEntries > 0 && d.pendingCount >= f.cfg.PendingEntries {
			d.stats.PendingFull++
			return xbar.Action{} // no room to track: let the home serve it
		}
		d.stats.Hits++
		if sw.Stage == 0 {
			d.stats.LeafHits++
		} else {
			d.stats.TopHits++
		}
		d.clock++
		e.state = Trans
		e.reqVec = mesg.NodeSetOf(m.Requester)
		e.lru = d.clock
		d.pendingCount++
		return xbar.Action{
			Sink: true,
			Generated: []*mesg.Message{{
				Kind: mesg.CtoCReq, Addr: m.Addr, Src: m.Src, Dst: mesg.P(e.owner),
				Requester: m.Requester, Owner: e.owner, Marked: true, Issued: m.Issued,
			}},
		}
	case Trans:
		d.stats.TransientHits++
		if f.cfg.Policy == PolicyBitVector {
			if !e.reqVec.Has(m.Requester) {
				d.stats.BitVectorAdds++
				e.reqVec.Add(m.Requester)
			}
			return xbar.Action{Sink: true}
		}
		d.stats.RetriesSent++
		return xbar.Action{
			Sink: true,
			Generated: []*mesg.Message{{
				Kind: mesg.Retry, Addr: m.Addr, Src: m.Src, Dst: mesg.P(m.Requester),
				Requester: m.Requester, Marked: true, Issued: m.Issued,
			}},
		}
	}
	return xbar.Action{}
}

// writeReq invalidates MODIFIED entries; in TRANSIENT the write is
// bounced so the in-flight transfer can finish.
func (f *Fabric) writeReq(d *dir, m *mesg.Message) xbar.Action {
	e := d.find(m.Addr)
	if e == nil {
		return xbar.Action{}
	}
	switch e.state {
	case Inv:
		// Unreachable: find never returns INVALID entries.
	case Mod:
		d.stats.Invalidates++
		e.state = Inv
		return xbar.Action{}
	case Trans:
		d.stats.WriteNacks++
		return xbar.Action{
			Sink: true,
			Generated: []*mesg.Message{{
				Kind: mesg.Nack, Addr: m.Addr, Src: m.Src, Dst: mesg.P(m.Requester),
				Requester: m.Requester, ForWrite: true, Marked: true, Issued: m.Issued,
			}},
		}
	}
	return xbar.Action{}
}

// ctocReq handles home-forwarded (or foreign-switch) transfer requests
// travelling the backward path.
func (f *Fabric) ctocReq(d *dir, m *mesg.Message) xbar.Action {
	e := d.find(m.Addr)
	if e == nil {
		return xbar.Action{}
	}
	switch e.state {
	case Inv:
		// Unreachable: find never returns INVALID entries.
	case Mod:
		// The transfer will move/downgrade the owner; our entry is stale.
		d.stats.Invalidates++
		e.state = Inv
	case Trans:
		if m.ForWrite {
			// An ownership transfer must reach the owner: the writer
			// completes through the owner's CtoC reply, and sinking
			// the forward would orphan the home's record of the new
			// owner. The owner resolves the interleaving with our
			// in-flight read transfer either way (serving from S, or
			// bouncing with a NoData copyback that clears this entry).
			return xbar.Action{}
		}
		// A read transfer is already in flight from this switch; the
		// home's pending read completes via the marked copyback (the
		// home controller re-drives its stalled request then).
		d.stats.CtoCSunk++
		return xbar.Action{Sink: true}
	}
	return xbar.Action{}
}

// release clears a TRANSIENT entry's tracking.
func (d *dir) release(e *entry) {
	if e.state == Trans && d.pendingCount > 0 {
		d.pendingCount--
	}
	e.state = Inv
	e.reqVec.Clear()
}

// copyBack observes the data returning home. A TRANSIENT entry's
// extra bit-vector requesters are served straight from the copyback
// data with marked replies, and their pids ride home on the message's
// sharer vector.
func (f *Fabric) copyBack(d *dir, m *mesg.Message) xbar.Action {
	e := d.find(m.Addr)
	if e == nil {
		return xbar.Action{}
	}
	if m.NoData {
		// Transient-clear from a node that could not serve a marked
		// CtoC request: bounce every waiting requester back to the
		// home and drop the entry — MODIFIED entries naming that node
		// are stale too.
		var gen []*mesg.Message
		if e.state == Trans {
			for _, p := range mesg.SharerList(e.reqVec) {
				d.stats.RetriesSent++
				gen = append(gen, &mesg.Message{
					Kind: mesg.Retry, Addr: m.Addr, Src: m.Src, Dst: mesg.P(p),
					Requester: p, Marked: true,
				})
			}
		} else {
			d.stats.Invalidates++
		}
		d.release(e)
		return xbar.Action{Generated: gen}
	}
	var gen []*mesg.Message
	if e.state == Trans {
		first := m.Requester
		for _, p := range mesg.SharerList(e.reqVec) {
			if p == first {
				continue // served by the owner's CtoC reply
			}
			d.stats.ServedFromCB++
			m.AddSharer(p)
			gen = append(gen, &mesg.Message{
				Kind: mesg.ReadReply, Addr: m.Addr, Src: m.Src, Dst: mesg.P(p),
				Requester: p, Data: m.Data, Marked: true,
			})
		}
	} else {
		d.stats.Invalidates++
	}
	d.release(e)
	return xbar.Action{Generated: gen}
}

// writeBack invalidates MODIFIED entries. In TRANSIENT state the
// owner replaced the line before our CtoC request arrived: serve the
// waiting requesters from the writeback data, mark the message and
// attach the requester pid so the home's map stays exact (Section 3.2).
func (f *Fabric) writeBack(d *dir, m *mesg.Message) xbar.Action {
	if m.ForWrite {
		// Ownership-transfer ack: carries no data and is not a real
		// replacement; invalidate any stale MODIFIED entry and pass.
		if e := d.find(m.Addr); e != nil && e.state == Mod {
			d.stats.Invalidates++
			e.state = Inv
		}
		return xbar.Action{}
	}
	e := d.find(m.Addr)
	if e == nil {
		return xbar.Action{}
	}
	var gen []*mesg.Message
	if e.state == Trans {
		reqs := mesg.SharerList(e.reqVec)
		for i, p := range reqs {
			d.stats.ServedFromWB++
			if i == 0 {
				m.Marked = true
				m.Requester = p
			} else {
				m.AddSharer(p)
			}
			gen = append(gen, &mesg.Message{
				Kind: mesg.ReadReply, Addr: m.Addr, Src: m.Src, Dst: mesg.P(p),
				Requester: p, Data: m.Data, Marked: true,
			})
		}
	} else {
		d.stats.Invalidates++
	}
	d.release(e)
	return xbar.Action{Generated: gen}
}

// retry re-routes a passing retry to all waiting bit-vector
// requesters so none of them hangs.
func (f *Fabric) retry(d *dir, m *mesg.Message) xbar.Action {
	e := d.find(m.Addr)
	if e == nil || e.state != Trans || f.cfg.Policy != PolicyBitVector {
		return xbar.Action{}
	}
	var gen []*mesg.Message
	for _, p := range mesg.SharerList(e.reqVec) {
		if p == m.Requester {
			continue
		}
		gen = append(gen, &mesg.Message{
			Kind: mesg.Retry, Addr: m.Addr, Src: m.Src, Dst: mesg.P(p),
			Requester: p, Marked: true,
		})
	}
	return xbar.Action{Generated: gen}
}

// TotalStats folds every switch's counters into the fabric-wide
// roll-up. Call it only when the fabric's shards are not executing (at
// collection points or after a run).
func (f *Fabric) TotalStats() Stats {
	var s Stats
	for _, d := range f.dirs {
		s.add(&d.stats)
	}
	return s
}

// Lookup exposes a switch's entry state for tests and invariants.
func (f *Fabric) Lookup(sw topo.SwitchID, addr uint64) (EntryState, int, mesg.NodeSet) {
	d := f.dirs[f.tp.SwitchOrdinal(sw)]
	if e := d.find(addr); e != nil {
		return e.state, e.owner, e.reqVec
	}
	return Inv, 0, mesg.NodeSet{}
}

// Disable flags one switch's directory faulty: it is bypassed from
// now on (see Snoop) and its MODIFIED entries are discarded — stale
// optimization state a faulty array cannot be trusted to hold.
// TRANSIENT entries survive so their in-flight transfers drain.
func (f *Fabric) Disable(sw topo.SwitchID) { f.DisableOrdinal(f.tp.SwitchOrdinal(sw)) }

// DisableOrdinal is Disable by switch ordinal (fault-plan addressing).
func (f *Fabric) DisableOrdinal(i int) {
	if f.disabled[i] {
		return
	}
	f.disabled[i] = true
	for _, set := range f.dirs[i].sets {
		for w := range set {
			if set[w].state == Mod {
				set[w].state = Inv
				set[w].reqVec.Clear()
			}
		}
	}
}

// FailSwitch models whole-switch death (as opposed to Disable's
// graceful degradation): the directory SRAM is gone, so every entry —
// including TRANSIENT ones and their pending-buffer state — is
// invalidated and the directory never processes another snoop.
// Requesters whose transfers were intercepted here are orphaned with
// the entry; they recover by retransmitting to the home node (the NI
// timeout path), which remains the fallback authority. The loss is
// tallied in Stats: EntriesLost, PendingLost, and one HomeFallback per
// requester recorded in a lost TRANSIENT entry's bit vector.
func (f *Fabric) FailSwitch(sw topo.SwitchID) { f.FailOrdinal(f.tp.SwitchOrdinal(sw)) }

// FailOrdinal is FailSwitch by switch ordinal (fault-plan addressing).
func (f *Fabric) FailOrdinal(i int) {
	if f.failed[i] {
		return
	}
	f.failed[i] = true
	f.disabled[i] = true
	d := f.dirs[i]
	for _, set := range d.sets {
		for w := range set {
			e := &set[w]
			if e.state == Inv {
				continue
			}
			d.stats.EntriesLost++
			if e.state == Trans {
				d.stats.PendingLost++
				d.stats.HomeFallbacks += uint64(e.reqVec.Count())
			}
			e.state = Inv
			e.reqVec.Clear()
		}
	}
	d.pendingCount = 0
}

// Failed reports whether a switch's directory died with its switch.
func (f *Fabric) Failed(sw topo.SwitchID) bool { return f.failed[f.tp.SwitchOrdinal(sw)] }

// DisableAll flags every switch directory faulty, degrading the whole
// machine to the base home protocol.
func (f *Fabric) DisableAll() {
	for i := range f.dirs {
		f.DisableOrdinal(i)
	}
}

// DirCount reports the number of switch directories in the fabric
// (fault plans pick disable targets by ordinal in [0, DirCount)).
func (f *Fabric) DirCount() int { return len(f.dirs) }

// Disabled reports whether a switch's directory is flagged faulty.
func (f *Fabric) Disabled(sw topo.SwitchID) bool { return f.disabled[f.tp.SwitchOrdinal(sw)] }

// DisabledCount reports how many switch directories are flagged faulty.
func (f *Fabric) DisabledCount() int {
	n := 0
	for _, d := range f.disabled {
		if d {
			n++
		}
	}
	return n
}

// modEntries collects every live MODIFIED entry across enabled
// switches, in deterministic (ordinal, set, way) order.
func (f *Fabric) modEntries() []*entry {
	var out []*entry
	for i, d := range f.dirs {
		if f.disabled[i] {
			continue
		}
		for _, set := range d.sets {
			for w := range set {
				if set[w].state == Mod {
					out = append(out, &set[w])
				}
			}
		}
	}
	return out
}

// CorruptRandom flips one pseudo-randomly chosen MODIFIED entry's
// owner to a different node, modeling a soft error in the directory
// SRAM. The next read intercepted through the entry fires a marked
// CtoC request at a non-owner, exercising the NoData-copyback
// recovery path end to end. Reports whether an entry was corrupted.
func (f *Fabric) CorruptRandom(rng *sim.RNG, nodes int) bool {
	cands := f.modEntries()
	if len(cands) == 0 || nodes < 2 {
		return false
	}
	e := cands[rng.Intn(len(cands))]
	e.owner = (e.owner + 1 + rng.Intn(nodes-1)) % nodes
	return true
}

// EvictRandom invalidates one pseudo-randomly chosen MODIFIED entry,
// modeling a lost or scrubbed line. Purely an optimization loss: the
// next read falls through to the home. Reports whether an entry was
// evicted.
func (f *Fabric) EvictRandom(rng *sim.RNG) bool {
	cands := f.modEntries()
	if len(cands) == 0 {
		return false
	}
	e := cands[rng.Intn(len(cands))]
	e.state = Inv
	e.reqVec.Clear()
	return true
}

// TransientCount reports resident TRANSIENT entries at a switch.
func (f *Fabric) TransientCount(sw topo.SwitchID) int {
	d := f.dirs[f.tp.SwitchOrdinal(sw)]
	n := 0
	for _, set := range d.sets {
		for i := range set {
			if set[i].state == Trans {
				n++
			}
		}
	}
	return n
}
