package sdir

import (
	"testing"

	"dresar/internal/mesg"
	"dresar/internal/topo"
)

// TestFailOrdinalLosesEverything: whole-switch death destroys the
// directory SRAM — every entry is invalidated with the losses tallied,
// waiting requesters of TRANSIENT entries become home fallbacks, and
// the directory never processes another snoop.
func TestFailOrdinalLosesEverything(t *testing.T) {
	f := newFab(t, Config{Entries: 1024, Ways: 4, Policy: PolicyBitVector, SnoopPorts: 2})
	sw := top0()
	ord := tp16.SwitchOrdinal(sw)

	// Three MODIFIED entries; two go TRANSIENT, one with two waiting
	// requesters in its bit vector.
	f.Snoop(sw, wreply(0x40, 7), 0)
	f.Snoop(sw, wreply(0x80, 5), 0)
	f.Snoop(sw, wreply(0xc0, 2), 0)
	f.Snoop(sw, rreq(0x40, 3), 10)
	f.Snoop(sw, rreq(0x40, 4), 11) // bit-vector add: second waiter on 0x40
	f.Snoop(sw, rreq(0x80, 6), 12)
	if f.TotalStats().Hits != 2 || f.TotalStats().BitVectorAdds != 1 {
		t.Fatalf("setup stats: %+v", f.TotalStats())
	}
	if n := f.TransientCount(sw); n != 2 {
		t.Fatalf("TransientCount = %d, want 2", n)
	}

	f.FailOrdinal(ord)

	if !f.Failed(sw) || !f.Disabled(sw) {
		t.Fatal("failed switch not flagged")
	}
	if f.TotalStats().EntriesLost != 3 {
		t.Errorf("EntriesLost = %d, want 3", f.TotalStats().EntriesLost)
	}
	if f.TotalStats().PendingLost != 2 {
		t.Errorf("PendingLost = %d, want 2", f.TotalStats().PendingLost)
	}
	// Requesters 3 and 4 (on 0x40) plus 6 (on 0x80) must re-home.
	if f.TotalStats().HomeFallbacks != 3 {
		t.Errorf("HomeFallbacks = %d, want 3", f.TotalStats().HomeFallbacks)
	}
	for _, addr := range []uint64{0x40, 0x80, 0xc0} {
		if st, _, vec := f.Lookup(sw, addr); st != Inv || !vec.Empty() {
			t.Errorf("addr %#x survives as %v vec=%v", addr, st, vec)
		}
	}
	if n := f.TransientCount(sw); n != 0 {
		t.Errorf("TransientCount = %d after failure", n)
	}

	// The dead directory is a full bypass: inserts do not land, drains
	// do not process, every snoop counts as bypassed.
	before := f.TotalStats().Bypassed
	if a := f.Snoop(sw, wreply(0x100, 9), 20); a.Sink || len(a.Generated) != 0 {
		t.Fatalf("dead directory acted: %+v", a)
	}
	cb := &mesg.Message{Kind: mesg.CopyBack, Addr: 0x40, Src: mesg.P(7), Dst: mesg.M(0), Requester: 3, Data: 1}
	if a := f.Snoop(sw, cb, 21); a.Sink || len(a.Generated) != 0 {
		t.Fatalf("dead directory drained: %+v", a)
	}
	if st, _, _ := f.Lookup(sw, 0x100); st != Inv {
		t.Fatal("dead directory inserted")
	}
	if f.TotalStats().Bypassed != before+2 {
		t.Errorf("Bypassed = %d, want %d", f.TotalStats().Bypassed, before+2)
	}

	// Idempotent: a second failure report must not double-count losses.
	f.FailOrdinal(ord)
	if f.TotalStats().EntriesLost != 3 || f.TotalStats().PendingLost != 2 || f.TotalStats().HomeFallbacks != 3 {
		t.Errorf("second FailOrdinal changed loss counters: %+v", f.TotalStats())
	}

	// Other switches are untouched.
	leaf := topo.SwitchID{Stage: 0, Index: 1}
	f.Snoop(leaf, wreply(0x40, 7), 30)
	if st, owner, _ := f.Lookup(leaf, 0x40); st != Mod || owner != 7 {
		t.Fatalf("healthy switch entry = %v owner=%d", st, owner)
	}
}

// TestFailSwitchDelegates: the SwitchID form addresses the same state
// as the ordinal form.
func TestFailSwitchDelegates(t *testing.T) {
	f := newFab(t, DefaultConfig())
	sw := top0()
	f.Snoop(sw, wreply(0x40, 7), 0)
	f.FailSwitch(sw)
	if !f.Failed(sw) {
		t.Fatal("FailSwitch did not flag the switch")
	}
	if f.TotalStats().EntriesLost != 1 || f.TotalStats().PendingLost != 0 || f.TotalStats().HomeFallbacks != 0 {
		t.Fatalf("loss counters: %+v", f.TotalStats())
	}
}
