// Package mesg defines the coherence messages that flow through the
// DRESAR interconnect, their flit-level sizes, and the endpoint
// addressing scheme used by the bidirectional MIN.
//
// The message vocabulary is Table 1 of the paper (ReadRequest,
// WriteRequest, WriteReply, CtoC_Request, CopyBack, WriteBack, Retry)
// plus the supporting messages any full-map MSI protocol needs
// (ReadReply, CtoCReply, Inval, InvalAck, WBAck, Nack). Messages
// generated or rewritten by a switch directory are tagged with a
// single marked bit in the header flit, exactly as in the paper, so
// cache and directory controllers can distinguish them.
package mesg

import "fmt"

// Kind enumerates message types.
type Kind uint8

// Message kinds. The first seven are Table 1 of the paper.
const (
	// ReadReq is a load miss travelling to the home memory (forward).
	ReadReq Kind = iota
	// WriteReq is a store miss / ownership request to the home (forward).
	WriteReq
	// WriteReply carries data + ownership from home to a writer
	// (backward). Switch directories insert a MODIFIED entry for the
	// block as this message passes.
	WriteReply
	// CtoCReq asks the owner cache to supply a dirty block. The home
	// (or a switch directory, when marked) forwards it along the
	// backward path toward the owner's processor port.
	CtoCReq
	// CopyBack carries dirty data from the owner to the home after a
	// cache-to-cache read, keeping memory consistent (forward).
	CopyBack
	// WriteBack carries a replaced dirty block to the home (forward).
	WriteBack
	// Retry tells a requester to re-issue (backward).
	Retry

	// ReadReply carries clean data from home to a reader (backward).
	ReadReply
	// CtoCReply carries dirty data from the owner cache to the
	// requesting cache (processor-to-processor turnaround route).
	CtoCReply
	// Inval invalidates a shared copy (home to sharer, backward).
	Inval
	// InvalAck acknowledges an invalidation (sharer to home, forward).
	InvalAck
	// WBAck acknowledges a WriteBack so the evicting cache can release
	// its outbound victim buffer entry (backward).
	WBAck
	// Nack rejects a request that raced with a conflicting transaction;
	// the requester re-issues (backward).
	Nack

	numKinds
)

var kindNames = [numKinds]string{
	"ReadReq", "WriteReq", "WriteReply", "CtoCReq", "CopyBack",
	"WriteBack", "Retry", "ReadReply", "CtoCReply", "Inval", "InvalAck",
	"WBAck", "Nack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// CarriesData reports whether the message carries a full cache block
// payload (and therefore data flits beyond the header).
func (k Kind) CarriesData() bool {
	switch k {
	case WriteReply, CopyBack, WriteBack, ReadReply, CtoCReply:
		return true
	case ReadReq, WriteReq, CtoCReq, Inval, InvalAck, WBAck, Nack, Retry:
		// Header-only: requests, invalidations, and acknowledgments.
		return false
	}
	return false
}

// SnoopsSwitchDir reports whether a switch directory must process this
// message type as it passes (Section 3.2). All other kinds bypass the
// directory entirely.
func (k Kind) SnoopsSwitchDir() bool {
	switch k {
	case ReadReq, WriteReq, WriteReply, CtoCReq, CopyBack, WriteBack, Retry:
		return true
	case ReadReply, CtoCReply, Inval, InvalAck, WBAck, Nack:
		// Table 1's bypass set: replies travelling the forward path and
		// point-to-point control the directory never rewrites.
		return false
	}
	return false
}

// Side identifies which rank of BMIN endpoints a message endpoint is
// on: the processor/cache interface at the bottom or the memory
// interface at the top (Figure 3's dance-hall arrangement).
type Side uint8

const (
	// ProcSide is the processor/cache interface rank.
	ProcSide Side = iota
	// MemSide is the memory/directory interface rank.
	MemSide
)

func (s Side) String() string {
	if s == ProcSide {
		return "P"
	}
	return "M"
}

// End names one interconnect endpoint: node i's processor port or node
// i's memory port.
type End struct {
	Side Side
	Node int
}

// P returns node i's processor-side endpoint.
func P(i int) End { return End{ProcSide, i} }

// M returns node i's memory-side endpoint.
func M(i int) End { return End{MemSide, i} }

func (e End) String() string { return fmt.Sprintf("%v%d", e.Side, e.Node) }

// Flit and link geometry (Table 2; Intel Cavallino-like).
const (
	// FlitBytes is the flit size: 8 bytes.
	FlitBytes = 8
	// LinkCyclesPerFlit is the 16-bit-link serialization time: four
	// 200MHz cycles to move one 8-byte flit between switches.
	LinkCyclesPerFlit = 4
	// BlockBytes is the coherence unit: a 32-byte cache line.
	BlockBytes = 32
	// HeaderFlits is the message header size in flits.
	HeaderFlits = 1
	// DataFlits is the payload size of a data-carrying message.
	DataFlits = BlockBytes / FlitBytes
)

// Message is one coherence message in flight. Data-carrying messages
// transport a block "version" rather than raw bytes: versions are
// written monotonically per block, which lets the test suite verify
// value coherence (a fill must never return a version older than the
// last committed write).
type Message struct {
	ID   uint64 // unique per machine, for tracing
	Kind Kind
	Addr uint64 // block-aligned physical address
	Src  End
	Dst  End

	// Requester is the processor that started the transaction this
	// message serves. For switch-directory-generated messages it is the
	// pid the paper says is carried in the header.
	Requester int
	// Owner is the owning processor for CtoC forwards.
	Owner int
	// Sharers is the full-map style sharer set carried by marked
	// copyback/writeback messages to restore the home directory, and by
	// the bit-vector read-in-TRANSIENT policy.
	Sharers NodeSet
	// Marked is the single header bit flagging switch-directory
	// generated or rewritten messages.
	Marked bool
	// ForWrite distinguishes an ownership-transfer CtoCReq/CtoCReply/
	// CopyBack (store miss to a dirty block) from a read-shared one.
	ForWrite bool
	// SwitchCache marks a ReadReply generated by the switch-cache
	// extension (clean data served in the interconnect), so the
	// requester classifies it as a clean switch hit rather than a
	// cache-to-cache transfer.
	SwitchCache bool
	// NoData marks a CopyBack sent by a node that received a marked
	// CtoC request for a block it no longer holds (a stale switch
	// entry). It carries no payload; its only job is to travel the
	// forward path clearing TRANSIENT switch-directory entries and
	// bouncing their waiting requesters. The home ignores it.
	NoData bool

	// Data is the block version payload for data-carrying messages.
	Data uint64

	// Issued is the cycle the parent transaction started, used for
	// latency accounting at completion.
	Issued uint64

	// Tx identifies the processor transaction a request belongs to.
	// A retransmitted request (NI timeout recovery) carries the same
	// Tx as the original, letting the home recognize and drop
	// duplicates of transactions it has already completed. 0 means
	// "no transaction" (non-request messages, legacy senders).
	Tx uint64
}

// Flits returns the message length in flits.
func (m *Message) Flits() int {
	if m.Kind.CarriesData() {
		return HeaderFlits + DataFlits
	}
	return HeaderFlits
}

func (m *Message) String() string {
	mark := ""
	if m.Marked {
		mark = "*"
	}
	return fmt.Sprintf("%v%s[%#x] %v->%v req=%d own=%d", m.Kind, mark, m.Addr, m.Src, m.Dst, m.Requester, m.Owner)
}

// AddSharer adds processor p to the sharer set.
func (m *Message) AddSharer(p int) { m.Sharers.Add(p) }

// SharerList expands the sharer set into ascending pids.
func SharerList(vec NodeSet) []int { return vec.List() }
