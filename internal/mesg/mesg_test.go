package mesg

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ReadReq:    "ReadReq",
		WriteReq:   "WriteReq",
		WriteReply: "WriteReply",
		CtoCReq:    "CtoCReq",
		CopyBack:   "CopyBack",
		WriteBack:  "WriteBack",
		Retry:      "Retry",
		ReadReply:  "ReadReply",
		CtoCReply:  "CtoCReply",
		Inval:      "Inval",
		InvalAck:   "InvalAck",
		WBAck:      "WBAck",
		Nack:       "Nack",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}

func TestCarriesData(t *testing.T) {
	data := []Kind{WriteReply, CopyBack, WriteBack, ReadReply, CtoCReply}
	noData := []Kind{ReadReq, WriteReq, CtoCReq, Retry, Inval, InvalAck, WBAck, Nack}
	for _, k := range data {
		if !k.CarriesData() {
			t.Errorf("%v should carry data", k)
		}
	}
	for _, k := range noData {
		if k.CarriesData() {
			t.Errorf("%v should not carry data", k)
		}
	}
}

func TestSnoopSetMatchesTable1(t *testing.T) {
	// Exactly the seven Table 1 kinds snoop the switch directory.
	table1 := []Kind{ReadReq, WriteReq, WriteReply, CtoCReq, CopyBack, WriteBack, Retry}
	snoops := map[Kind]bool{}
	for k := Kind(0); k < numKinds; k++ {
		if k.SnoopsSwitchDir() {
			snoops[k] = true
		}
	}
	if len(snoops) != len(table1) {
		t.Fatalf("snoop set has %d kinds, want %d", len(snoops), len(table1))
	}
	for _, k := range table1 {
		if !snoops[k] {
			t.Errorf("%v missing from snoop set", k)
		}
	}
}

func TestFlitCounts(t *testing.T) {
	m := &Message{Kind: ReadReq}
	if m.Flits() != 1 {
		t.Errorf("header-only message = %d flits, want 1", m.Flits())
	}
	m.Kind = ReadReply
	// 32-byte block / 8-byte flits = 4 data flits + 1 header.
	if m.Flits() != 5 {
		t.Errorf("data message = %d flits, want 5", m.Flits())
	}
}

func TestEndpoints(t *testing.T) {
	p := P(3)
	m := M(7)
	if p.Side != ProcSide || p.Node != 3 {
		t.Errorf("P(3) = %+v", p)
	}
	if m.Side != MemSide || m.Node != 7 {
		t.Errorf("M(7) = %+v", m)
	}
	if p.String() != "P3" || m.String() != "M7" {
		t.Errorf("strings: %v %v", p, m)
	}
	if P(1) == M(1) {
		t.Error("P(1) must differ from M(1)")
	}
}

func TestSharerVector(t *testing.T) {
	m := &Message{}
	m.AddSharer(0)
	m.AddSharer(5)
	m.AddSharer(15)
	got := SharerList(m.Sharers)
	want := []int{0, 5, 15}
	if len(got) != len(want) {
		t.Fatalf("sharers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharers = %v, want %v", got, want)
		}
	}
	if SharerList(0) != nil {
		t.Error("empty vector should give nil list")
	}
}

func TestSharerRoundTrip(t *testing.T) {
	f := func(vec uint64) bool {
		// Round-trip: expanding and re-packing preserves the vector
		// (restricted to 64 processors by construction).
		var re uint64
		for _, p := range SharerList(vec) {
			re |= 1 << uint(p)
		}
		return re == vec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Kind: CtoCReq, Addr: 0x1000, Src: M(2), Dst: P(5), Requester: 5, Owner: 9, Marked: true}
	s := m.String()
	if s == "" {
		t.Fatal("empty string")
	}
	// Marked messages carry the * tag.
	found := false
	for i := 0; i+1 < len(s); i++ {
		if s[i:i+1] == "*" {
			found = true
		}
	}
	if !found {
		t.Errorf("marked message string missing *: %q", s)
	}
}
