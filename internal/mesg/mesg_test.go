package mesg

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ReadReq:    "ReadReq",
		WriteReq:   "WriteReq",
		WriteReply: "WriteReply",
		CtoCReq:    "CtoCReq",
		CopyBack:   "CopyBack",
		WriteBack:  "WriteBack",
		Retry:      "Retry",
		ReadReply:  "ReadReply",
		CtoCReply:  "CtoCReply",
		Inval:      "Inval",
		InvalAck:   "InvalAck",
		WBAck:      "WBAck",
		Nack:       "Nack",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}

func TestCarriesData(t *testing.T) {
	data := []Kind{WriteReply, CopyBack, WriteBack, ReadReply, CtoCReply}
	noData := []Kind{ReadReq, WriteReq, CtoCReq, Retry, Inval, InvalAck, WBAck, Nack}
	for _, k := range data {
		if !k.CarriesData() {
			t.Errorf("%v should carry data", k)
		}
	}
	for _, k := range noData {
		if k.CarriesData() {
			t.Errorf("%v should not carry data", k)
		}
	}
}

func TestSnoopSetMatchesTable1(t *testing.T) {
	// Exactly the seven Table 1 kinds snoop the switch directory.
	table1 := []Kind{ReadReq, WriteReq, WriteReply, CtoCReq, CopyBack, WriteBack, Retry}
	snoops := map[Kind]bool{}
	for k := Kind(0); k < numKinds; k++ {
		if k.SnoopsSwitchDir() {
			snoops[k] = true
		}
	}
	if len(snoops) != len(table1) {
		t.Fatalf("snoop set has %d kinds, want %d", len(snoops), len(table1))
	}
	for _, k := range table1 {
		if !snoops[k] {
			t.Errorf("%v missing from snoop set", k)
		}
	}
}

func TestFlitCounts(t *testing.T) {
	m := &Message{Kind: ReadReq}
	if m.Flits() != 1 {
		t.Errorf("header-only message = %d flits, want 1", m.Flits())
	}
	m.Kind = ReadReply
	// 32-byte block / 8-byte flits = 4 data flits + 1 header.
	if m.Flits() != 5 {
		t.Errorf("data message = %d flits, want 5", m.Flits())
	}
}

func TestEndpoints(t *testing.T) {
	p := P(3)
	m := M(7)
	if p.Side != ProcSide || p.Node != 3 {
		t.Errorf("P(3) = %+v", p)
	}
	if m.Side != MemSide || m.Node != 7 {
		t.Errorf("M(7) = %+v", m)
	}
	if p.String() != "P3" || m.String() != "M7" {
		t.Errorf("strings: %v %v", p, m)
	}
	if P(1) == M(1) {
		t.Error("P(1) must differ from M(1)")
	}
}

func TestSharerVector(t *testing.T) {
	m := &Message{}
	m.AddSharer(0)
	m.AddSharer(5)
	m.AddSharer(15)
	got := SharerList(m.Sharers)
	want := []int{0, 5, 15}
	if len(got) != len(want) {
		t.Fatalf("sharers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharers = %v, want %v", got, want)
		}
	}
	if SharerList(NodeSet{}) != nil {
		t.Error("empty set should give nil list")
	}
}

func TestSharerRoundTrip(t *testing.T) {
	f := func(vec uint64) bool {
		// Round-trip: expanding and re-packing preserves the set
		// (restricted to 64 processors by construction).
		var s NodeSet
		for p := 0; p < 64; p++ {
			if vec&(1<<uint(p)) != 0 {
				s.Add(p)
			}
		}
		var re uint64
		for _, p := range SharerList(s) {
			re |= 1 << uint(p)
		}
		return re == vec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSetSpill(t *testing.T) {
	// IDs >= 64 must survive: a uint64 vector would silently drop them.
	s := NodeSetOf(3, 63, 64, 200, 1023)
	if s.Count() != 5 {
		t.Fatalf("count = %d, want 5", s.Count())
	}
	for _, p := range []int{3, 63, 64, 200, 1023} {
		if !s.Has(p) {
			t.Fatalf("missing %d", p)
		}
	}
	if s.Has(4) || s.Has(65) || s.Has(999) {
		t.Fatal("phantom members")
	}
	want := []int{3, 63, 64, 200, 1023}
	got := s.List()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}

	var u NodeSet
	u.Or(s)
	u.Add(100)
	if !u.ContainsAll(s) || s.ContainsAll(u) {
		t.Fatal("ContainsAll wrong after Or/Add")
	}
	if s.Has(100) {
		t.Fatal("Or aliased backing storage between sets")
	}
	if !u.Equal(NodeSetOf(3, 63, 64, 100, 200, 1023)) {
		t.Fatalf("u = %v", u)
	}
	u.Clear()
	if !u.Empty() || u.Count() != 0 || u.List() != nil {
		t.Fatalf("clear left members: %v", u)
	}
	// Equality must ignore spill capacity: a cleared wide set equals
	// the zero value.
	if !u.Equal(NodeSet{}) || !(NodeSet{}).Equal(u) {
		t.Fatal("capacity leaked into equality")
	}
	if NodeSetOf(2, 70).String() != "{2,70}" {
		t.Fatalf("string = %q", NodeSetOf(2, 70).String())
	}
	if (NodeSet{}).String() != "{}" {
		t.Fatalf("empty string = %q", (NodeSet{}).String())
	}
}

func TestMessageString(t *testing.T) {
	m := &Message{Kind: CtoCReq, Addr: 0x1000, Src: M(2), Dst: P(5), Requester: 5, Owner: 9, Marked: true}
	s := m.String()
	if s == "" {
		t.Fatal("empty string")
	}
	// Marked messages carry the * tag.
	found := false
	for i := 0; i+1 < len(s); i++ {
		if s[i:i+1] == "*" {
			found = true
		}
	}
	if !found {
		t.Errorf("marked message string missing *: %q", s)
	}
}
