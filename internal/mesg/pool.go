package mesg

// Pool is a freelist of Message structs. The exec-driven simulator
// churns through one short-lived Message per protocol hop — by far the
// largest allocation class in a run — and the engine is strictly
// single-threaded, so a plain LIFO freelist (no sync.Pool, no locks)
// recycles them with two pointer moves. Each simulated machine owns
// its pool; parallel sweep workers therefore never contend.
//
// Ownership discipline (enforced statically by the msgown analyzer's
// use-after-release check, see docs/ANALYSIS.md): Release transfers
// ownership of the struct to the pool — the releasing controller must
// be the message's final consumer and must not touch it afterwards.
// Components that retain delivered messages (a home directory queuing
// a request) simply don't release until their retention ends.
//
// A nil *Pool is valid and allocates from the heap on Get while
// discarding on Release, so pooling can be switched off wholesale
// (e.g. when a protocol monitor that retains message pointers is
// attached) without touching any call site.
type Pool struct {
	free []*Message
	// Gets/News/Puts count pool traffic: News is the cold-miss
	// allocation count, so Gets-News is the number of recycles.
	Gets, News, Puts uint64
}

// Get returns a zeroed Message, reusing a released one when available.
func (p *Pool) Get() *Message {
	if p == nil || len(p.free) == 0 {
		if p != nil {
			p.Gets++
			p.News++
		}
		return &Message{}
	}
	p.Gets++
	m := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	*m = Message{}
	return m
}

// Release returns m to the pool. m must not be used afterwards. Both a
// nil pool and a nil message are no-ops, so terminal protocol points
// can release unconditionally.
func (p *Pool) Release(m *Message) {
	if p == nil || m == nil {
		return
	}
	p.Puts++
	p.free = append(p.free, m)
}
