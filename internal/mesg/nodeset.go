package mesg

import (
	"fmt"
	"math/bits"
	"strings"
)

// NodeSet is a set of node (processor) IDs: the full-map sharer
// vector. The first 64 IDs live in an inline word, so machines up to
// the paper's scale never allocate for sharer tracking; bigger
// machines (the 256- and 1024-node scalability sweeps) spill into
// extra words on demand. A plain uint64 would silently drop any node
// ID >= 64 — Go defines oversized shifts as zero — which is exactly
// the kind of corruption a coherence protocol must not inherit from
// its container types.
//
// The zero value is the empty set. Copying a NodeSet copies the spill
// slice header, so treat copies as read-only snapshots: mutate a set
// only through one owner (Or copies content from its argument, never
// the backing array, so growing one set cannot alias another).
type NodeSet struct {
	lo uint64
	hi []uint64 // IDs 64+; word w covers [64*(w+1), 64*(w+2))
}

// NodeSetOf builds a set from explicit IDs (tests, table literals).
func NodeSetOf(ids ...int) NodeSet {
	var s NodeSet
	for _, p := range ids {
		s.Add(p)
	}
	return s
}

// Add inserts node p.
func (s *NodeSet) Add(p int) {
	if p < 64 {
		s.lo |= 1 << uint(p)
		return
	}
	w := p/64 - 1
	for len(s.hi) <= w {
		s.hi = append(s.hi, 0)
	}
	s.hi[w] |= 1 << uint(p%64)
}

// Has reports whether node p is in the set.
func (s NodeSet) Has(p int) bool {
	if p < 64 {
		return s.lo&(1<<uint(p)) != 0
	}
	w := p/64 - 1
	return w < len(s.hi) && s.hi[w]&(1<<uint(p%64)) != 0
}

// Or folds o into s (set union). Content is copied word by word, so s
// and o never share backing storage afterwards.
func (s *NodeSet) Or(o NodeSet) {
	s.lo |= o.lo
	for w, v := range o.hi {
		if v == 0 {
			continue
		}
		for len(s.hi) <= w {
			s.hi = append(s.hi, 0)
		}
		s.hi[w] |= v
	}
}

// Clear empties the set in place, keeping any spill capacity.
func (s *NodeSet) Clear() {
	s.lo = 0
	for w := range s.hi {
		s.hi[w] = 0
	}
}

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool {
	if s.lo != 0 {
		return false
	}
	for _, v := range s.hi {
		if v != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members.
func (s NodeSet) Count() int {
	n := bits.OnesCount64(s.lo)
	for _, v := range s.hi {
		n += bits.OnesCount64(v)
	}
	return n
}

// ContainsAll reports whether every member of o is also in s.
func (s NodeSet) ContainsAll(o NodeSet) bool {
	if o.lo&^s.lo != 0 {
		return false
	}
	for w, v := range o.hi {
		if w < len(s.hi) {
			v &^= s.hi[w]
		}
		if v != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality (independent of spill capacity).
func (s NodeSet) Equal(o NodeSet) bool {
	return s.ContainsAll(o) && o.ContainsAll(s)
}

// List expands the set into ascending node IDs; nil when empty. The
// ascending order is load-bearing: invalidation fan-out iterates it,
// and simulation determinism requires a fixed traversal order.
func (s NodeSet) List() []int {
	var out []int
	for v, p := s.lo, 0; v != 0; p++ {
		if v&1 != 0 {
			out = append(out, p)
		}
		v >>= 1
	}
	for w, word := range s.hi {
		base := 64 * (w + 1)
		for v, p := word, 0; v != 0; p++ {
			if v&1 != 0 {
				out = append(out, base+p)
			}
			v >>= 1
		}
	}
	return out
}

// String renders the members compactly for debug traces.
func (s NodeSet) String() string {
	if s.Empty() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range s.List() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", p)
	}
	b.WriteByte('}')
	return b.String()
}
