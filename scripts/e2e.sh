#!/bin/sh
# End-to-end smoke of the serving layer with real binaries and real
# simulations: the server is built with the race detector, exercised
# through dresar-load (cold run, cache-hit byte-identity, mid-run
# cancellation), then drained with SIGTERM and required to exit 0.
set -eu

cd "$(dirname "$0")/.."
mkdir -p bin
go build -race -o bin/dresar-served ./cmd/dresar-served
go build -o bin/dresar-load ./cmd/dresar-load

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

bin/dresar-served -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -cache "$tmp/cache" -workers 2 -queue 8 -drain 30s 2>"$tmp/server.log" &
server_pid=$!

# Wait for the listener (the addr file is written atomically).
i=0
while [ ! -s "$tmp/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "e2e: server never published its address" >&2
        cat "$tmp/server.log" >&2
        exit 1
    fi
    kill -0 "$server_pid" 2>/dev/null || {
        echo "e2e: server died on startup" >&2
        cat "$tmp/server.log" >&2
        exit 1
    }
    sleep 0.1
done
base="http://$(cat "$tmp/addr")"
echo "e2e: server at $base"

echo "e2e: cold run"
bin/dresar-load -base "$base" -n 1 -apps fft -sizes 0,256 -out "$tmp/golden.json"
test -s "$tmp/golden.json" || { echo "e2e: no result payload" >&2; exit 1; }

echo "e2e: cache hits must be byte-identical to the cold run"
bin/dresar-load -base "$base" -n 4 -c 4 -apps fft -sizes 0,256 \
    -expect-cached -verify "$tmp/golden.json"

echo "e2e: cancel a long job mid-run"
bin/dresar-load -base "$base" -n 1 -apps tpcc -sizes 0 -cancel-after 200ms

echo "e2e: graceful drain on SIGTERM"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
    echo "e2e: server exited $status on drain" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$tmp/server.log" || {
    echo "e2e: drain not confirmed in server log" >&2
    cat "$tmp/server.log" >&2
    exit 1
}
echo "e2e: PASS"
