#!/bin/sh
# End-to-end smoke of the serving layer with real binaries and real
# simulations: the server is built with the race detector, exercised
# through dresar-load (cold run, cache-hit byte-identity, mid-run
# cancellation), drained with SIGTERM and required to exit 0 — then
# the durability harness: submit work, kill -9 the server mid-run,
# corrupt the journal tail, restart over the same directories, and
# require every submitted job to reach a terminal state exactly once,
# followed by a multi-tenant soak against a byte-bounded cache.
set -eu

cd "$(dirname "$0")/.."
mkdir -p bin
go build -race -o bin/dresar-served ./cmd/dresar-served
go build -o bin/dresar-load ./cmd/dresar-load

tmp=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# wait_addr FILE PID: block until the server publishes its address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "e2e: server never published its address" >&2
            cat "$tmp/server.log" >&2
            exit 1
        fi
        kill -0 "$2" 2>/dev/null || {
            echo "e2e: server died on startup" >&2
            cat "$tmp/server.log" >&2
            exit 1
        }
        sleep 0.1
    done
}

bin/dresar-served -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -cache "$tmp/cache" -journal "$tmp/journal" \
    -workers 2 -queue 8 -drain 30s 2>"$tmp/server.log" &
server_pid=$!
wait_addr "$tmp/addr" "$server_pid"
base="http://$(cat "$tmp/addr")"
echo "e2e: server at $base"

echo "e2e: cold run"
bin/dresar-load -base "$base" -n 1 -apps fft -sizes 0,256 -out "$tmp/golden.json"
test -s "$tmp/golden.json" || { echo "e2e: no result payload" >&2; exit 1; }

echo "e2e: cache hits must be byte-identical to the cold run"
bin/dresar-load -base "$base" -n 4 -c 4 -apps fft -sizes 0,256 \
    -expect-cached -verify "$tmp/golden.json"

echo "e2e: cancel a long job mid-run"
bin/dresar-load -base "$base" -n 1 -apps tpcc -sizes 0 -cancel-after 200ms

echo "e2e: graceful drain on SIGTERM"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
    echo "e2e: server exited $status on drain" >&2
    cat "$tmp/server.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$tmp/server.log" || {
    echo "e2e: drain not confirmed in server log" >&2
    cat "$tmp/server.log" >&2
    exit 1
}

echo "e2e: journal of the drained server is terminal exactly-once"
bin/dresar-served -check-journal "$tmp/journal" -require-terminal >"$tmp/check1.json" || {
    echo "e2e: clean drain left a non-terminal journal" >&2
    cat "$tmp/check1.json" >&2
    exit 1
}

# ---- crash-recovery: kill -9 mid-run, corrupt the tail, restart ----

echo "e2e: crash harness: submit jobs, then kill -9 mid-run"
rm -f "$tmp/addr"
bin/dresar-served -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -cache "$tmp/cache2" -journal "$tmp/journal2" \
    -workers 2 -queue 32 -drain 30s 2>"$tmp/server.log" &
server_pid=$!
wait_addr "$tmp/addr" "$server_pid"
base="http://$(cat "$tmp/addr")"

bin/dresar-load -base "$base" -submit-only -ids-file "$tmp/ids.txt" \
    -n 6 -apps tpcc -sizes 0
sleep 0.5
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

# A torn frame at the tail of the newest segment, as a real power cut
# would leave: the restart must quarantine it, never crash on it.
newest_wal=$(ls "$tmp/journal2"/seg-*.wal | sort | tail -1)
printf 'GARBAGE-TORN-FRAME' >>"$newest_wal"

echo "e2e: restart over the crashed state"
rm -f "$tmp/addr"
bin/dresar-served -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -cache "$tmp/cache2" -journal "$tmp/journal2" \
    -cache-max-bytes 65536 -quarantine-max-bytes 65536 \
    -tenant-rate 200 -tenant-burst 50 \
    -workers 2 -queue 32 -drain 30s 2>"$tmp/server2.log" &
server_pid=$!
wait_addr "$tmp/addr" "$server_pid"
base="http://$(cat "$tmp/addr")"

grep -q "journal recovered" "$tmp/server2.log" || {
    echo "e2e: restart did not report journal recovery" >&2
    cat "$tmp/server2.log" >&2
    exit 1
}

echo "e2e: every pre-crash job must reach a terminal state (and succeed)"
bin/dresar-load -base "$base" -wait-ids "$tmp/ids.txt" -expect-done -timeout 2m

echo "e2e: multi-tenant soak against the byte-bounded cache"
bin/dresar-load -base "$base" -soak -duration 10s -tenants 4 -clients 16 \
    -cancel-frac 0.1

echo "e2e: cache integrity after crash + soak (no checksum failures)"
stats=$(curl -sf "$base/stats")
if command -v jq >/dev/null 2>&1; then
    quarantined=$(printf '%s' "$stats" | jq '.cache.quarantined')
else
    quarantined=$(printf '%s' "$stats" | grep -o '"quarantined":[0-9]*' | head -1 | cut -d: -f2)
fi
if [ "$quarantined" != "0" ]; then
    echo "e2e: cache quarantined $quarantined entries after crash + soak" >&2
    printf '%s\n' "$stats" >&2
    exit 1
fi

echo "e2e: drain the recovered server"
kill -TERM "$server_pid"
status=0
wait "$server_pid" || status=$?
server_pid=""
if [ "$status" -ne 0 ]; then
    echo "e2e: recovered server exited $status on drain" >&2
    cat "$tmp/server2.log" >&2
    exit 1
fi

echo "e2e: post-crash journal is terminal exactly-once"
bin/dresar-served -check-journal "$tmp/journal2" -require-terminal >"$tmp/check2.json" || {
    echo "e2e: crash/restart violated exactly-once" >&2
    cat "$tmp/check2.json" >&2
    exit 1
}

echo "e2e: PASS"
