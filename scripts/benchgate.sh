#!/bin/sh
# Two perf gates. First a memory-ceiling gate: the scalability
# benchmarks' live-heap metric must grow sub-quadratically from 64 to
# 256 nodes (route state is O(N·s + bounded LRU), not per-pair
# tables). It runs on every host. Then the parallel-speedup gate:
# BenchmarkShardedFFT at 8 workers must beat the
# same benchmark at 1 worker, or the sharded engine's coordination
# machinery has regressed into pure overhead — the failure mode the
# adaptive-lookahead protocol exists to prevent.
#
# The comparison only means anything when real cores back the workers:
# on a host with fewer than 8 CPUs the 8-worker run time-slices the
# shard goroutines over the same cores and measures scheduler churn,
# not the protocol (a 1-CPU runner reports ~1.5x "slowdown" for a
# protocol that is strictly faster on 8 cores). Such hosts SKIP with
# exit 0 and say so; CI runners with 8+ vCPUs enforce.
#
# A single measurement is too noisy to gate on: one descheduling blip
# on a shared runner and the gate cries wolf. Each configuration runs
# -count=5 and the gate compares the per-configuration MINIMUM ns/op —
# for a CPU-bound benchmark the minimum is the least-contaminated
# estimate, since interference only ever adds time. On top of that the
# pass condition keeps a 5% margin (fail only when min(eight) exceeds
# 95% of min(one)), so a genuine regression to parity still fails
# while measurement jitter around a real speedup never does.
set -eu
cd "$(dirname "$0")/.."

# --- Memory-ceiling gate (runs on every host, before the CPU skip) ---
#
# Route state must be O(N·s + bounded LRU), not the old O(N²) of
# per-(proc,mem) precomputed paths. The scalability benchmarks report
# the GC'd live heap of the largest machine they build; going from 64
# to 256 nodes (4x) a quadratic structure would grow ~16x, so the gate
# asserts live-heap(256) < 16 * live-heap(64). Linear-ish growth sits
# around 3-4x, leaving the bound loose enough to never trip on noise
# and tight enough to catch an accidental return to quadratic tables.
memout=$(go test -run '^$' -bench 'BenchmarkScalability(64|256)Nodes$' -benchtime 1x .)
echo "$memout"

heapmb() {
	awk -v unit="live-heap-mb-$1" '{ for (i = 2; i <= NF; i++) if ($i == unit) print $(i-1) }'
}
h64=$(echo "$memout" | heapmb 64n)
h256=$(echo "$memout" | heapmb 256n)
if [ -z "$h64" ] || [ -z "$h256" ]; then
	echo "benchgate: FAIL: could not parse live-heap-mb metrics (64n: '$h64', 256n: '$h256')"
	exit 1
fi
echo "benchgate: live heap: 64 nodes ${h64} MB, 256 nodes ${h256} MB"
if awk "BEGIN { exit !($h256 >= $h64 * 16) }"; then
	echo "benchgate: FAIL: 256-node live heap is >=16x the 64-node heap — route state is growing quadratically"
	exit 1
fi
awk "BEGIN { printf \"benchgate: OK: 64->256-node heap growth %.2fx (sub-quadratic bound 16x)\\n\", $h256 / $h64 }"

# --- Parallel-speedup gate (needs 8 real cores) ---

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$ncpu" -lt 8 ]; then
	echo "benchgate: SKIP: host has $ncpu CPU(s), need 8 for an honest 8-worker measurement"
	exit 0
fi

out=$(go test -run '^$' -bench 'BenchmarkShardedFFT/workers=(1|8)$' -benchtime 3x -count 5 .)
echo "$out"

min() {
	awk -v pat="$1" '$1 ~ pat { if (best == "" || $3 < best) best = $3 } END { print best }'
}
one=$(echo "$out" | min 'workers=1-')
eight=$(echo "$out" | min 'workers=8-')
if [ -z "$one" ] || [ -z "$eight" ]; then
	echo "benchgate: FAIL: could not parse ns/op (workers=1: '$one', workers=8: '$eight')"
	exit 1
fi

echo "benchgate: min of 5 runs: workers=1 ${one} ns/op, workers=8 ${eight} ns/op"
if awk "BEGIN { exit !($eight > $one * 0.95) }"; then
	echo "benchgate: FAIL: 8 workers not faster than 1 (beyond the 5% noise margin) on an ${ncpu}-CPU host"
	exit 1
fi
awk "BEGIN { printf \"benchgate: OK: 8-worker speedup %.2fx\\n\", $one / $eight }"
