#!/bin/sh
# Parallel-speedup gate: BenchmarkShardedFFT at 8 workers must beat the
# same benchmark at 1 worker, or the sharded engine's coordination
# machinery has regressed into pure overhead — the failure mode the
# adaptive-lookahead protocol exists to prevent.
#
# The comparison only means anything when real cores back the workers:
# on a host with fewer than 8 CPUs the 8-worker run time-slices the
# shard goroutines over the same cores and measures scheduler churn,
# not the protocol (a 1-CPU runner reports ~1.5x "slowdown" for a
# protocol that is strictly faster on 8 cores). Such hosts SKIP with
# exit 0 and say so; CI runners with 8+ vCPUs enforce.
#
# A single measurement is too noisy to gate on: one descheduling blip
# on a shared runner and the gate cries wolf. Each configuration runs
# -count=5 and the gate compares the per-configuration MINIMUM ns/op —
# for a CPU-bound benchmark the minimum is the least-contaminated
# estimate, since interference only ever adds time. On top of that the
# pass condition keeps a 5% margin (fail only when min(eight) exceeds
# 95% of min(one)), so a genuine regression to parity still fails
# while measurement jitter around a real speedup never does.
set -eu
cd "$(dirname "$0")/.."

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$ncpu" -lt 8 ]; then
	echo "benchgate: SKIP: host has $ncpu CPU(s), need 8 for an honest 8-worker measurement"
	exit 0
fi

out=$(go test -run '^$' -bench 'BenchmarkShardedFFT/workers=(1|8)$' -benchtime 3x -count 5 .)
echo "$out"

min() {
	awk -v pat="$1" '$1 ~ pat { if (best == "" || $3 < best) best = $3 } END { print best }'
}
one=$(echo "$out" | min 'workers=1-')
eight=$(echo "$out" | min 'workers=8-')
if [ -z "$one" ] || [ -z "$eight" ]; then
	echo "benchgate: FAIL: could not parse ns/op (workers=1: '$one', workers=8: '$eight')"
	exit 1
fi

echo "benchgate: min of 5 runs: workers=1 ${one} ns/op, workers=8 ${eight} ns/op"
if awk "BEGIN { exit !($eight > $one * 0.95) }"; then
	echo "benchgate: FAIL: 8 workers not faster than 1 (beyond the 5% noise margin) on an ${ncpu}-CPU host"
	exit 1
fi
awk "BEGIN { printf \"benchgate: OK: 8-worker speedup %.2fx\\n\", $one / $eight }"
