#!/bin/sh
# Parallel-speedup gate: BenchmarkShardedFFT at 8 workers must beat the
# same benchmark at 1 worker, or the sharded engine's coordination
# machinery has regressed into pure overhead — the failure mode the
# adaptive-lookahead protocol exists to prevent.
#
# The comparison only means anything when real cores back the workers:
# on a host with fewer than 8 CPUs the 8-worker run time-slices the
# shard goroutines over the same cores and measures scheduler churn,
# not the protocol (a 1-CPU runner reports ~1.5x "slowdown" for a
# protocol that is strictly faster on 8 cores). Such hosts SKIP with
# exit 0 and say so; CI runners with 8+ vCPUs enforce.
set -eu
cd "$(dirname "$0")/.."

ncpu=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
if [ "$ncpu" -lt 8 ]; then
	echo "benchgate: SKIP: host has $ncpu CPU(s), need 8 for an honest 8-worker measurement"
	exit 0
fi

out=$(go test -run '^$' -bench 'BenchmarkShardedFFT/workers=(1|8)$' -benchtime 3x .)
echo "$out"

one=$(echo "$out" | awk '$1 ~ /workers=1-/ {print $3}')
eight=$(echo "$out" | awk '$1 ~ /workers=8-/ {print $3}')
if [ -z "$one" ] || [ -z "$eight" ]; then
	echo "benchgate: FAIL: could not parse ns/op (workers=1: '$one', workers=8: '$eight')"
	exit 1
fi

echo "benchgate: workers=1 ${one} ns/op, workers=8 ${eight} ns/op"
if awk "BEGIN { exit !($eight > $one) }"; then
	echo "benchgate: FAIL: 8 workers slower than 1 on an ${ncpu}-CPU host"
	exit 1
fi
awk "BEGIN { printf \"benchgate: OK: 8-worker speedup %.2fx\\n\", $one / $eight }"
