package dresar_test

import (
	"testing"

	"dresar"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README
// quickstart does: base vs switch-directory machine on a small FFT.
func TestPublicAPIQuickstart(t *testing.T) {
	run := func(cfg dresar.Config) dresar.Stats {
		m, err := dresar.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := dresar.NewDriver(m, dresar.NewFFT(1024, 16))
		if err != nil {
			t.Fatal(err)
		}
		s, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := run(dresar.DefaultConfig())
	sd := run(dresar.DefaultConfig().WithSwitchDir(1024))
	if base.ReadCtoCHome == 0 {
		t.Fatal("no CtoC traffic in base")
	}
	if sd.ReadCtoCSwitch == 0 {
		t.Fatal("switch directories served nothing")
	}
	if sd.Cycles >= base.Cycles {
		t.Fatalf("no speedup: base=%d sd=%d", base.Cycles, sd.Cycles)
	}
}

func TestPublicAPIWorkloadByName(t *testing.T) {
	for _, name := range []string{"fft", "tc", "sor", "fwa", "gauss"} {
		w, err := dresar.WorkloadByName(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		if w.Procs() != 16 || w.Phases() == 0 {
			t.Fatalf("%s: %d procs %d phases", name, w.Procs(), w.Phases())
		}
	}
	if _, err := dresar.WorkloadByName("nope", 16); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestPublicAPITraceSim(t *testing.T) {
	s, err := dresar.NewTraceSim(dresar.DefaultTraceConfig().WithSDir(1024))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run(dresar.NewTPCCTrace(200_000))
	if st.Refs != 200_000 || st.ReadMisses == 0 {
		t.Fatalf("stats: %+v", st)
	}
	d, err := dresar.NewTraceSim(dresar.DefaultTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	dst := d.Run(dresar.NewTPCDTrace(100_000))
	if dst.CtoC() == 0 {
		t.Fatal("TPC-D trace produced no dirty misses")
	}
}

func TestPublicAPISwitchCacheExtension(t *testing.T) {
	cfg := dresar.DefaultConfig().WithSwitchDir(512).WithSwitchCache(256)
	m, err := dresar.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dresar.NewDriver(m, dresar.NewTC(32, 16))
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.ReadCleanSwitch == 0 {
		t.Fatalf("switch cache idle on TC's broadcast rows: %+v", s)
	}
}
