# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test vet bench figures figures-paper fuzz clean

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# One iteration of every benchmark, including the figure regenerators
# and the design-space ablations (reduced inputs).
bench:
	go test -bench=. -benchmem -benchtime 1x ./...

# The paper's result figures at reduced scale (fast) and full scale.
figures:
	go run ./cmd/figures

figures-paper:
	go run ./cmd/figures -scale paper -csv results/paper | tee results/figures_paper.txt

# Extended randomized protocol validation.
fuzz:
	DRESAR_FUZZ_SEEDS=2000 go test ./internal/core -run TestFuzzProtocol -timeout 30m

clean:
	go clean ./...
