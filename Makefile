# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build test test-race vet bench figures figures-paper fuzz clean

all: check

# The default gate: compile, static checks, tests, and the race
# detector (the fault-injection and watchdog paths are concurrency-
# sensitive by construction).
check: build vet test test-race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

test-race:
	go test -race ./...

# One iteration of every benchmark, including the figure regenerators
# and the design-space ablations (reduced inputs).
bench:
	go test -bench=. -benchmem -benchtime 1x ./...

# The paper's result figures at reduced scale (fast) and full scale.
figures:
	go run ./cmd/figures

figures-paper:
	go run ./cmd/figures -scale paper -csv results/paper | tee results/figures_paper.txt

# Extended randomized protocol validation.
fuzz:
	DRESAR_FUZZ_SEEDS=2000 go test ./internal/core -run TestFuzzProtocol -timeout 30m

clean:
	go clean ./...
