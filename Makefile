# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build test test-race vet lint bench figures figures-paper fuzz fuzz-short clean

all: check

# The default gate: compile, static checks (go vet plus the repo's own
# dresar-lint analyzers), tests, the race detector (the fault-injection
# and watchdog paths are concurrency-sensitive by construction), and a
# short run of the coverage-guided fuzzers.
check: build vet lint test test-race fuzz-short

build:
	go build ./...

vet:
	go vet ./...

# The project analyzers (docs/ANALYSIS.md): determinism, protocol-enum
# exhaustiveness, message ownership, counter monotonicity. Running the
# tool through `go vet -vettool=` gets per-package result caching keyed
# on the tool binary's hash.
lint:
	go build -o bin/dresar-lint ./cmd/dresar-lint
	go vet -vettool=$(CURDIR)/bin/dresar-lint ./...

test:
	go test ./...

test-race:
	go test -race ./...

# One iteration of every benchmark, including the figure regenerators
# and the design-space ablations (reduced inputs).
bench:
	go test -bench=. -benchmem -benchtime 1x ./...

# The paper's result figures at reduced scale (fast) and full scale.
figures:
	go run ./cmd/figures

figures-paper:
	go run ./cmd/figures -scale paper -csv results/paper | tee results/figures_paper.txt

# Extended randomized protocol validation.
fuzz:
	DRESAR_FUZZ_SEEDS=2000 go test ./internal/core -run TestFuzzProtocol -timeout 30m

# Short coverage-guided fuzzing of the fault-recovery surfaces: routing
# under arbitrary link/switch deaths, and flit reassembly under
# arbitrary corruption patterns. Offline and deterministic enough for
# the default gate; crashes land in testdata/fuzz/ as usual.
fuzz-short:
	go test -run '^$$' -fuzz FuzzRoute -fuzztime 10s ./internal/xbar
	go test -run '^$$' -fuzz FuzzFlitReassembly -fuzztime 10s ./internal/flit

clean:
	go clean ./...
