# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build test test-race test-race-sharded vet lint lint-json bench bench-short bench-compare bench-parallel-gate figures figures-paper fuzz fuzz-short e2e clean

all: check

# The default gate: compile, static checks (go vet plus the repo's own
# dresar-lint analyzers), tests, the race detector (the fault-injection
# and watchdog paths are concurrency-sensitive by construction), and a
# short run of the coverage-guided fuzzers.
check: build vet lint test test-race fuzz-short

build:
	go build ./...

vet:
	go vet ./...

# The project analyzers (docs/ANALYSIS.md): determinism, protocol-enum
# exhaustiveness, message ownership, counter monotonicity, plus the
# CFG/dataflow checks over the concurrent core (shard isolation, lock
# discipline, cancellation, fsync ordering). Running the tool through
# `go vet -vettool=` gets per-package result caching keyed on the tool
# binary's hash.
lint:
	go build -o bin/dresar-lint ./cmd/dresar-lint
	go vet -vettool=$(CURDIR)/bin/dresar-lint ./...

# Machine-readable findings for the CI artifact: standalone mode (no
# vet cache) always writes lint.json, even when it then exits nonzero
# on findings.
lint-json:
	go build -o bin/dresar-lint ./cmd/dresar-lint
	bin/dresar-lint -json ./... > lint.json

test:
	go test ./...

# The fast race pass skips the serial-vs-sharded differential suite
# (the single longest race run); test-race-sharded carries it.
test-race:
	go test -race -skip 'TestSerialShardedDifferential|TestShardedPaperScaleSmoke' ./...

# The sharded-engine race gate on its own: the serial-vs-sharded
# differential test drives every workload across 2/4/8 workers under
# the race detector, which is the proof that the quantum-barrier
# protocol has no unsynchronized cross-shard access. Split out from
# the fast path because it is the single longest race run; CI gives it
# a dedicated job, and the same job carries a full race pass over the
# serving layer (the other concurrency-dense package, and the one the
# lockheld/ctxflow analyzers guard statically — the dynamic check
# keeps the static one honest).
test-race-sharded:
	go test -race -run 'Sharded|Differential' ./internal/sim/... ./internal/figures/...
	go test -race ./internal/serve/...

# One iteration of every benchmark, including the figure regenerators,
# the design-space ablations (reduced inputs), the sharded-engine
# scaling points, and the serving layer's submit-to-result latency
# (cached vs uncached). The results are rendered into BENCH_8.json via
# cmd/benchjson after an informational comparison against the committed
# copy; commit the refreshed file when a perf change is intentional.
# BENCH_7.json stays in the tree as the pre-generalized-topology record.
bench:
	go build -o bin/benchjson ./cmd/benchjson
	go test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench.out
	bin/benchjson -in bench.out -out BENCH_8.json -baseline BENCH_8.json

# Diff two committed benchmark documents directly — no fresh bench run.
# Defaults to the previous record against the current one; override
# with OLD=/NEW=, and set TOLERANCE=pct to turn the report into a gate
# (exit 1 when any |delta| on ns/op, B/op, or allocs/op exceeds it).
OLD ?= BENCH_7.json
NEW ?= BENCH_8.json
TOLERANCE ?= 0
bench-compare:
	go build -o bin/benchjson ./cmd/benchjson
	bin/benchjson compare -tolerance $(TOLERANCE) $(OLD) $(NEW)

# The CI perf gate: the Figure 8 sweep benchmark (the run that pays
# for the shared ScaleSmall sweep, so its ns/op and Msimcycles/sec are
# honest) plus the scheduler hot-path microbenchmark, best of
# $(BENCH_COUNT) runs, compared against the committed BENCH_8.json.
# The sweep repeats in separate processes because the figure
# benchmarks share one sync.Once sweep per process. Informational by
# default; ENFORCE=1 makes a >10% throughput or allocation regression
# fail the build (CI enforces on main pushes and stays informational
# on pull requests).
BENCH_COUNT ?= 3
bench-short:
	go build -o bin/benchjson ./cmd/benchjson
	for i in $$(seq $(BENCH_COUNT)); do \
		go test -run '^$$' -bench 'Fig8' -benchmem -benchtime 1x . || exit 1; \
	done > bench_short.out
	go test -run '^$$' -bench EngineScheduleRun -benchmem -count $(BENCH_COUNT) ./internal/sim >> bench_short.out
	bin/benchjson -in bench_short.out -out bench_short.json -baseline BENCH_8.json $(if $(ENFORCE),-enforce)

# The parallel-speedup gate (scripts/benchgate.sh): BenchmarkShardedFFT
# at 8 workers must beat 1 worker, else the sharded engine's
# coordination has regressed into pure overhead. Skips (exit 0, with a
# message) on hosts with fewer than 8 CPUs, where the 8-worker run
# would time-slice and measure the scheduler instead of the protocol.
bench-parallel-gate:
	sh scripts/benchgate.sh

# The paper's result figures at reduced scale (fast) and full scale.
figures:
	go run ./cmd/figures

figures-paper:
	go run ./cmd/figures -scale paper -csv results/paper | tee results/figures_paper.txt

# End-to-end smoke of the serving layer: race-built dresar-served
# driven by dresar-load over real HTTP — cold run, byte-identical
# cache hits, mid-run cancellation, SIGTERM drain — then the crash
# harness: kill -9 mid-run, journal-tail corruption, restart-resume
# with exactly-once verification, and a multi-tenant soak against a
# byte-bounded cache.
e2e:
	sh scripts/e2e.sh

# Extended randomized protocol validation.
fuzz:
	DRESAR_FUZZ_SEEDS=2000 go test ./internal/core -run TestFuzzProtocol -timeout 30m

# Short coverage-guided fuzzing of the fault-recovery surfaces: routing
# under arbitrary link/switch deaths, flit reassembly under arbitrary
# corruption patterns, and the job-journal decoder under torn /
# bit-flipped / duplicated segment bytes. Offline and deterministic
# enough for the default gate; crashes land in testdata/fuzz/ as usual.
fuzz-short:
	go test -run '^$$' -fuzz FuzzRoute -fuzztime 10s ./internal/xbar
	go test -run '^$$' -fuzz FuzzFlitReassembly -fuzztime 10s ./internal/flit
	go test -run '^$$' -fuzz FuzzJournalReplay -fuzztime 10s ./internal/serve

clean:
	go clean ./...
