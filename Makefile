# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build test test-race vet lint bench bench-short figures figures-paper fuzz fuzz-short clean

all: check

# The default gate: compile, static checks (go vet plus the repo's own
# dresar-lint analyzers), tests, the race detector (the fault-injection
# and watchdog paths are concurrency-sensitive by construction), and a
# short run of the coverage-guided fuzzers.
check: build vet lint test test-race fuzz-short

build:
	go build ./...

vet:
	go vet ./...

# The project analyzers (docs/ANALYSIS.md): determinism, protocol-enum
# exhaustiveness, message ownership, counter monotonicity. Running the
# tool through `go vet -vettool=` gets per-package result caching keyed
# on the tool binary's hash.
lint:
	go build -o bin/dresar-lint ./cmd/dresar-lint
	go vet -vettool=$(CURDIR)/bin/dresar-lint ./...

test:
	go test ./...

test-race:
	go test -race ./...

# One iteration of every benchmark, including the figure regenerators
# and the design-space ablations (reduced inputs). The results are
# rendered into BENCH_4.json via cmd/benchjson after an informational
# comparison against the committed copy; commit the refreshed file when
# a perf change is intentional.
bench:
	go build -o bin/benchjson ./cmd/benchjson
	go test -run '^$$' -bench . -benchmem -benchtime 1x ./... > bench.out
	bin/benchjson -in bench.out -out BENCH_4.json -baseline BENCH_4.json

# The CI perf gate: the Figure 8 sweep benchmark (the run that pays
# for the shared ScaleSmall sweep, so its ns/op and Msimcycles/sec are
# honest) plus the scheduler hot-path microbenchmark, best of
# $(BENCH_COUNT) runs, compared against the committed BENCH_4.json.
# The sweep repeats in separate processes because the figure
# benchmarks share one sync.Once sweep per process. Informational by
# default; ENFORCE=1 makes a >10% throughput or allocation regression
# fail the build (CI enforces on main pushes and stays informational
# on pull requests).
BENCH_COUNT ?= 3
bench-short:
	go build -o bin/benchjson ./cmd/benchjson
	for i in $$(seq $(BENCH_COUNT)); do \
		go test -run '^$$' -bench 'Fig8' -benchmem -benchtime 1x . || exit 1; \
	done > bench_short.out
	go test -run '^$$' -bench EngineScheduleRun -benchmem -count $(BENCH_COUNT) ./internal/sim >> bench_short.out
	bin/benchjson -in bench_short.out -out bench_short.json -baseline BENCH_4.json $(if $(ENFORCE),-enforce)

# The paper's result figures at reduced scale (fast) and full scale.
figures:
	go run ./cmd/figures

figures-paper:
	go run ./cmd/figures -scale paper -csv results/paper | tee results/figures_paper.txt

# Extended randomized protocol validation.
fuzz:
	DRESAR_FUZZ_SEEDS=2000 go test ./internal/core -run TestFuzzProtocol -timeout 30m

# Short coverage-guided fuzzing of the fault-recovery surfaces: routing
# under arbitrary link/switch deaths, and flit reassembly under
# arbitrary corruption patterns. Offline and deterministic enough for
# the default gate; crashes land in testdata/fuzz/ as usual.
fuzz-short:
	go test -run '^$$' -fuzz FuzzRoute -fuzztime 10s ./internal/xbar
	go test -run '^$$' -fuzz FuzzFlitReassembly -fuzztime 10s ./internal/flit

clean:
	go clean ./...
