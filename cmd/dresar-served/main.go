// Command dresar-served serves simulation sweeps over HTTP: a bounded
// worker pool runs figures sweeps as jobs with per-job deadlines,
// client cancellation, typed engine-failure reporting, per-tenant
// admission quotas with weighted-fair dispatch, a crash-safe
// content-addressed result cache bounded by LRU eviction, and a
// write-ahead job journal that makes accepted work survive kill -9.
//
// Usage:
//
//	dresar-served [-addr :8080] [-workers 2] [-queue 16] [-cache DIR]
//	              [-cache-max-bytes N] [-quarantine-max-bytes N]
//	              [-journal DIR] [-tenant-rate R] [-tenant-burst B]
//	              [-deadline 2m] [-max-deadline 10m] [-drain 30s]
//	              [-addr-file PATH]
//	dresar-served -check-journal DIR [-require-terminal]
//
// Logs are JSON lines on stderr (one object per event: job id, tenant,
// state transitions, recovery report), so a supervisor can parse them.
//
// SIGINT/SIGTERM begin a graceful drain: in-flight jobs get -drain to
// finish, stragglers are cancelled through the engines' cooperative
// stop checks, and the process exits once every goroutine is joined.
// -addr-file writes the bound address (useful with -addr :0 in
// scripts and e2e tests) once the listener is up.
//
// -check-journal replays a journal directory read-only and prints its
// recovery report as JSON; with -require-terminal it exits non-zero
// unless every journaled job reached a terminal state exactly once —
// the e2e crash harness's post-mortem assertion.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dresar/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 2, "concurrent jobs")
	queue := flag.Int("queue", 16, "per-tenant admission queue depth (beyond it, submits are shed with 429)")
	cacheDir := flag.String("cache", "", "crash-safe result cache directory (empty = no cache)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "cache byte budget; over it, entries are evicted LRU (0 = unbounded)")
	quarMax := flag.Int64("quarantine-max-bytes", 0, "cache quarantine byte budget, trimmed oldest-first (0 = unbounded)")
	journalDir := flag.String("journal", "", "write-ahead job journal directory (empty = no durability)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission rate in submits/s (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant admission burst (0 = derived from rate)")
	deadline := flag.Duration("deadline", 2*time.Minute, "default per-job deadline")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested deadlines")
	sweepWorkers := flag.Int("sweep-workers", runtime.GOMAXPROCS(0), "cap on per-job cell parallelism")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before forcing cancellation")
	checkJournal := flag.String("check-journal", "", "replay this journal read-only, print its report, and exit")
	requireTerminal := flag.Bool("require-terminal", false, "with -check-journal: fail unless every job is terminal exactly once")
	flag.Parse()

	if *checkJournal != "" {
		os.Exit(runCheckJournal(*checkJournal, *requireTerminal))
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv, err := serve.NewServer(serve.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheDir:           *cacheDir,
		CacheMaxBytes:      *cacheMax,
		QuarantineMaxBytes: *quarMax,
		JournalDir:         *journalDir,
		TenantRate:         *tenantRate,
		TenantBurst:        *tenantBurst,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		MaxSweepWorkers:    *sweepWorkers,
		Log:                logger,
		Logf: func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		fatal(logger, "startup failed", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(logger, "listen failed", err)
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			fatal(logger, "addr-file write failed", err)
		}
	}
	hs := serve.NewHTTPServer(srv.Handler(), serve.HTTPTimeouts{})
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", *workers, "queue", *queue,
		"cache", *cacheDir, "cache_max_bytes", *cacheMax,
		"journal", *journalDir, "tenant_rate", *tenantRate)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "budget", drain.String())
	case err := <-errc:
		fatal(logger, "listener failed", err)
	}

	// Stop accepting connections, then drain the job pool: in-flight
	// work finishes inside the drain budget or is cancelled through
	// the engines' cooperative stop checks.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("drain incomplete", "err", err.Error())
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}

// runCheckJournal replays dir read-only, prints the recovery report as
// JSON on stdout, and returns the process exit code. CheckJournal
// fails on duplicate finishes always, and on non-terminal jobs when
// requireTerminal is set — the exactly-once assertion the crash
// harness runs after a kill -9 / restart cycle.
func runCheckJournal(dir string, requireTerminal bool) int {
	report, err := serve.CheckJournal(dir, requireTerminal)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-served: check-journal:", err)
		return 1
	}
	return 0
}

func fatal(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "err", err.Error())
	os.Exit(1)
}

// writeAddrFile publishes the bound address atomically so a watching
// script never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
