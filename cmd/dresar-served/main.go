// Command dresar-served serves simulation sweeps over HTTP: a bounded
// worker pool runs figures sweeps as jobs with per-job deadlines,
// client cancellation, typed engine-failure reporting, and a
// crash-safe content-addressed result cache.
//
// Usage:
//
//	dresar-served [-addr :8080] [-workers 2] [-queue 16] [-cache DIR]
//	              [-deadline 2m] [-max-deadline 10m] [-drain 30s]
//	              [-addr-file PATH]
//
// SIGINT/SIGTERM begin a graceful drain: in-flight jobs get -drain to
// finish, stragglers are cancelled through the engines' cooperative
// stop checks, and the process exits once every goroutine is joined.
// -addr-file writes the bound address (useful with -addr :0 in
// scripts and e2e tests) once the listener is up.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dresar/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening")
	workers := flag.Int("workers", 2, "concurrent jobs")
	queue := flag.Int("queue", 16, "admission queue depth (beyond it, submits are shed with 429)")
	cacheDir := flag.String("cache", "", "crash-safe result cache directory (empty = no cache)")
	deadline := flag.Duration("deadline", 2*time.Minute, "default per-job deadline")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested deadlines")
	sweepWorkers := flag.Int("sweep-workers", runtime.GOMAXPROCS(0), "cap on per-job cell parallelism")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget before forcing cancellation")
	flag.Parse()

	logger := log.New(os.Stderr, "dresar-served: ", log.LstdFlags)
	srv, err := serve.NewServer(serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		CacheDir:        *cacheDir,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxSweepWorkers: *sweepWorkers,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			logger.Fatal(err)
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	logger.Printf("listening on %s (workers=%d queue=%d cache=%q)",
		ln.Addr(), *workers, *queue, *cacheDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%s: draining for up to %s", sig, *drain)
	case err := <-errc:
		logger.Fatalf("listener failed: %v", err)
	}

	// Stop accepting connections, then drain the job pool: in-flight
	// work finishes inside the drain budget or is cancelled through
	// the engines' cooperative stop checks.
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}

// writeAddrFile publishes the bound address atomically so a watching
// script never reads a half-written file.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
