// Command dresar-lint is the repo's static-analysis gate. It bundles
// four analyzers that enforce invariants the test suite can only probe
// statistically:
//
//	detlint    determinism of the event path (no map-order side
//	           effects, wall clock, global rand, or goroutines)
//	kindswitch exhaustive switches over protocol enums
//	msgown     no mutation or re-send of a message already handed to
//	           the interconnect
//	statlint   Stats counters increment-only outside their owning
//	           package
//
// It speaks the `go vet -vettool=` protocol, so the usual invocation is
//
//	go build -o bin/dresar-lint ./cmd/dresar-lint
//	go vet -vettool=$(pwd)/bin/dresar-lint ./...
//
// (`make lint` does exactly that, with go vet's per-package caching).
// Run directly with package patterns it loads and checks them itself:
//
//	dresar-lint ./...
//
// Suppress an individual finding with a marker on, or on the line
// above, the flagged line:
//
//	//lint:ignore detlint reason why this one is safe
//
// See docs/ANALYSIS.md for each analyzer's contract.
package main

import (
	"fmt"
	"os"

	"dresar/internal/analysis"
	"dresar/internal/analysis/detlint"
	"dresar/internal/analysis/kindswitch"
	"dresar/internal/analysis/msgown"
	"dresar/internal/analysis/statlint"
)

var suite = []*analysis.Analyzer{
	detlint.Analyzer,
	kindswitch.Analyzer,
	msgown.Analyzer,
	statlint.Analyzer,
}

func main() {
	// Under `go vet -vettool=` the driver passes -flags / -V=full /
	// <objdir>/vet.cfg; VetMain recognizes and fully handles those.
	if analysis.VetMain(suite...) {
		return
	}
	// Standalone mode: load and check package patterns ourselves.
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-lint:", err)
		os.Exit(1)
	}
	diags, err := analysis.Run(cwd, patterns, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-lint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
