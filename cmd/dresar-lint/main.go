// Command dresar-lint is the repo's static-analysis gate. It bundles
// eight analyzers that enforce invariants the test suite can only probe
// statistically:
//
//	detlint    determinism of the event path (no map-order side
//	           effects, wall clock, global rand, or goroutines)
//	kindswitch exhaustive switches over protocol enums
//	msgown     no mutation or re-send of a message already handed to
//	           the interconnect
//	statlint   Stats counters increment-only outside their owning
//	           package
//	shardsafe  shard-worker goroutines touch only lane-local state;
//	           cross-shard data rides the stamped outbox/merge path
//	lockheld   Lock/Unlock balanced on every CFG path, no blocking
//	           operations under the serving locks, and acquisitions
//	           respect the declared Server.mu → Job.mu → Cache.mu order
//	ctxflow    every blocking operation on the serve request path is
//	           cancellable (select with a ctx.Done/stop case)
//	fsyncorder file handles follow the crash-safe create → write →
//	           Sync → Close → Rename → dir-sync protocol
//
// It speaks the `go vet -vettool=` protocol, so the usual invocation is
//
//	go build -o bin/dresar-lint ./cmd/dresar-lint
//	go vet -vettool=$(pwd)/bin/dresar-lint ./...
//
// (`make lint` does exactly that, with go vet's per-package caching).
// Run directly with package patterns it loads and checks them itself:
//
//	dresar-lint ./...
//	dresar-lint -json ./...   # machine-readable findings on stdout
//
// The -json form always writes a document (findings may be empty) and
// is what CI archives as its lint artifact.
//
// Suppress an individual finding with a marker on, or on the line
// above, the flagged line:
//
//	//lint:ignore detlint reason why this one is safe
//
// A marker that suppresses nothing is itself reported (analyzer name
// `suppress`), so stale ignores cannot mask future regressions.
//
// See docs/ANALYSIS.md for each analyzer's contract.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dresar/internal/analysis"
	"dresar/internal/analysis/suite"
)

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: always emitted, findings possibly
// empty, so CI can archive it unconditionally.
type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
	Count    int           `json:"count"`
}

func main() {
	// Under `go vet -vettool=` the driver passes -flags / -V=full /
	// <objdir>/vet.cfg; VetMain recognizes and fully handles those.
	if analysis.VetMain(suite.All...) {
		return
	}
	// Standalone mode: load and check package patterns ourselves.
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-lint:", err)
		os.Exit(1)
	}
	diags, err := analysis.Run(cwd, patterns, suite.All)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-lint:", err)
		os.Exit(1)
	}
	if *jsonOut {
		report := jsonReport{Findings: []jsonFinding{}, Count: len(diags)}
		for _, d := range diags {
			report.Findings = append(report.Findings, jsonFinding{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Column:   d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dresar-lint:", err)
			os.Exit(1)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}
