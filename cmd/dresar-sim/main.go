// Command dresar-sim runs one scientific workload on the
// execution-driven CC-NUMA machine and prints the statistics roll-up.
//
// Usage:
//
//	dresar-sim -app fft [-entries 1024] [-size 16384] [-nodes 16]
//	           [-policy retry|bitvector] [-pending 0] [-check]
//
// -entries 0 runs the base system with no switch directories. -size is
// the kernel's input parameter (points for FFT, matrix/grid dimension
// for the others; 0 uses the paper's Table 2 input).
package main

import (
	"flag"
	"fmt"
	"os"

	"dresar/internal/core"
	"dresar/internal/sdir"
	"dresar/internal/workload"
)

func main() {
	app := flag.String("app", "fft", "kernel: fft, tc, sor, fwa, gauss")
	entries := flag.Int("entries", 1024, "switch-directory entries per switch (0 = base system)")
	size := flag.Int("size", 0, "input size (0 = paper default)")
	iters := flag.Int("iters", 4, "iterations (SOR only)")
	nodes := flag.Int("nodes", 16, "node count")
	radix := flag.Int("radix", 4, "switch ports per side")
	policy := flag.String("policy", "retry", "read-in-TRANSIENT policy: retry or bitvector")
	pending := flag.Int("pending", 0, "pending-buffer entries (0 = main array only)")
	swc := flag.Int("swcache", 0, "switch-cache entries per top switch (0 = off; the conclusion's extension)")
	check := flag.Bool("check", false, "enable the coherence checker (slower)")
	flag.Parse()

	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.Radix = *nodes, *radix
	cfg.CheckCoherence = *check
	if *entries > 0 {
		cfg = cfg.WithSwitchDir(*entries)
		switch *policy {
		case "retry":
			cfg.SwitchDir.Policy = sdir.PolicyRetry
		case "bitvector":
			cfg.SwitchDir.Policy = sdir.PolicyBitVector
		default:
			fail(fmt.Errorf("unknown policy %q", *policy))
		}
		cfg.SwitchDir.PendingEntries = *pending
	}
	if *swc > 0 {
		cfg = cfg.WithSwitchCache(*swc)
	}

	var w workload.Workload
	var err error
	if *size == 0 && *app != "lu" && *app != "radix" {
		w, err = workload.ByName(*app, *nodes)
	} else {
		n := *size
		switch *app {
		case "fft":
			w = workload.NewFFT(n, *nodes)
		case "tc":
			w = workload.NewTC(n, *nodes)
		case "sor":
			w = workload.NewSOR(n, *iters, *nodes)
		case "fwa":
			w = workload.NewFWA(n, *nodes)
		case "gauss", "ge":
			w = workload.NewGauss(n, *nodes)
		case "lu":
			if n == 0 {
				n = 128
			}
			w = workload.NewLU(n, 16, *nodes)
		case "radix":
			if n == 0 {
				n = 1 << 16
			}
			w = workload.NewRadix(n, 4, *nodes)
		default:
			err = fmt.Errorf("unknown kernel %q", *app)
		}
	}
	fail(err)

	m, err := core.New(cfg)
	fail(err)
	d, err := workload.NewDriver(m, w)
	fail(err)
	s, err := d.Run()
	fail(err)
	if *check {
		fail(m.CheckInvariants())
	}

	fmt.Printf("app=%s entries=%d nodes=%d policy=%s\n", *app, *entries, *nodes, *policy)
	fmt.Println(s)
	if s.ReadMisses > 0 {
		fmt.Printf("ctocFraction=%.3f switchServedShare=%.3f\n",
			s.CtoCFraction(), float64(s.ReadCtoCSwitch)/float64(maxu(s.CtoC(), 1)))
	}
	fmt.Printf("readLatency: p50<=%d p90<=%d p99<=%d max=%d\n",
		m.ReadLatHist.Percentile(50), m.ReadLatHist.Percentile(90),
		m.ReadLatHist.Percentile(99), m.ReadLatHist.Percentile(100))
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dresar-sim: %v\n", err)
		os.Exit(1)
	}
}
