// Command dresar-sim runs one scientific workload on the
// execution-driven CC-NUMA machine and prints the statistics roll-up.
//
// Usage:
//
//	dresar-sim -app fft [-entries 1024] [-size 16384] [-nodes 16]
//	           [-policy retry|bitvector] [-pending 0] [-check]
//	           [-shard-workers N]
//	           [-faults drop=20,dup=10,seed=7]
//	           [-net-faults linkdown=0:4@5000,switchdown=6@8000]
//	           [-watchdog 1000000]
//	           [-cpuprofile cpu.prof] [-memprofile mem.prof] [-exectrace run.trace]
//	dresar-sim -sweep [-scale small|paper] [-workers N]
//
// -sweep regenerates the paper's figure sweep (every app × directory
// size) on a bounded worker pool — each cell is its own isolated
// single-threaded simulation, so the tables do not depend on -workers —
// and prints Figures 8–11.
//
// -shard-workers > 1 executes the single-run machine on the sharded
// parallel engine (cycle-identical statistics at any worker count;
// see DESIGN.md "Parallel execution model"); the environment variable
// DRESAR_ENGINE=sharded does the same with a CPU-derived width.
// Incompatible with -faults/-net-faults/-watchdog (serial-only
// features). -cpuprofile/-memprofile write pprof profiles, and
// -exectrace writes a runtime/trace execution trace — `go tool trace`
// on it shows per-shard goroutine timelines, barrier stalls, and shard
// imbalance directly (see EXPERIMENTS.md).
//
// -entries 0 runs the base system with no switch directories. -size is
// the kernel's input parameter (points for FFT, matrix/grid dimension
// for the others; 0 uses the paper's Table 2 input).
//
// -faults takes a fault-injection plan (see fault.ParsePlan):
// drop/dup/delay permille rates for home-bound requests, periodic
// switch-directory corrupt/evict events, and disableall/disableone
// cycles. -net-faults takes a network fault plan (see
// fault.ParseNetPlan): transient link corruption and scheduled
// link/switch failures; runs print the recovery counters and exit
// non-zero with a structured partition error if a message has no
// surviving path. -watchdog bounds cycles-without-progress; a stall
// exits non-zero with a structured diagnostic on stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"dresar/internal/core"
	"dresar/internal/fault"
	"dresar/internal/figures"
	"dresar/internal/sdir"
	"dresar/internal/sim"
	"dresar/internal/workload"
	"dresar/internal/xbar"
)

func main() {
	app := flag.String("app", "fft", "kernel: fft, tc, sor, fwa, gauss")
	entries := flag.Int("entries", 1024, "switch-directory entries per switch (0 = base system)")
	size := flag.Int("size", 0, "input size (0 = paper default)")
	iters := flag.Int("iters", 4, "iterations (SOR only)")
	nodes := flag.Int("nodes", 16, "node count")
	radix := flag.Int("radix", 4, "switch ports per side")
	policy := flag.String("policy", "retry", "read-in-TRANSIENT policy: retry or bitvector")
	pending := flag.Int("pending", 0, "pending-buffer entries (0 = main array only)")
	swc := flag.Int("swcache", 0, "switch-cache entries per top switch (0 = off; the conclusion's extension)")
	check := flag.Bool("check", false, "enable the coherence checker (slower)")
	faults := flag.String("faults", "", "fault-injection plan, e.g. drop=20,dup=10,seed=7 (empty = none)")
	netFaults := flag.String("net-faults", "", "network fault plan, e.g. corruptlink=0:4,linkdown=1:5@5000,switchdown=6@8000 (empty = none)")
	watchdog := flag.Uint64("watchdog", 0, "liveness watchdog: max cycles without progress (0 = off)")
	sweep := flag.Bool("sweep", false, "run the full figure sweep (every app × directory size) instead of one kernel")
	scale := flag.String("scale", "small", "sweep input scale: small or paper")
	workers := flag.Int("workers", 0, "sweep worker-pool width (0 = GOMAXPROCS, 1 = serial)")
	shardWorkers := flag.Int("shard-workers", 0, "intra-run shard count (0 = serial unless DRESAR_ENGINE=sharded, 1 = serial, >1 = parallel engine)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	exectrace := flag.String("exectrace", "", "write a runtime/trace execution trace to this file (inspect with `go tool trace`)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}
	if *exectrace != "" {
		f, err := os.Create(*exectrace)
		fail(err)
		fail(trace.Start(f))
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fail(err)
			runtime.GC()
			fail(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	if *sweep {
		runSweep(*scale, *workers)
		return
	}

	plan, err := fault.ParsePlan(*faults)
	fail(err)
	netPlan, err := fault.ParseNetPlan(*netFaults)
	fail(err)

	cfg := core.DefaultConfig()
	cfg.Nodes, cfg.Radix = *nodes, *radix
	cfg.CheckCoherence = *check
	cfg.ShardWorkers = *shardWorkers
	cfg.Faults = plan
	cfg.NetFaults = netPlan
	cfg.Watchdog = sim.Cycle(*watchdog)
	if plan.Active() || netPlan.Active() || cfg.Watchdog > 0 {
		// Fault runs want the message-level monitor: its obligations
		// make the stall diagnostic actionable.
		cfg.CheckProtocol = true
	}
	if *entries > 0 {
		cfg = cfg.WithSwitchDir(*entries)
		switch *policy {
		case "retry":
			cfg.SwitchDir.Policy = sdir.PolicyRetry
		case "bitvector":
			cfg.SwitchDir.Policy = sdir.PolicyBitVector
		default:
			fail(fmt.Errorf("unknown policy %q", *policy))
		}
		cfg.SwitchDir.PendingEntries = *pending
	}
	if *swc > 0 {
		cfg = cfg.WithSwitchCache(*swc)
	}

	var w workload.Workload
	if *size == 0 && *app != "lu" && *app != "radix" {
		w, err = workload.ByName(*app, *nodes)
	} else {
		n := *size
		switch *app {
		case "fft":
			w = workload.NewFFT(n, *nodes)
		case "tc":
			w = workload.NewTC(n, *nodes)
		case "sor":
			w = workload.NewSOR(n, *iters, *nodes)
		case "fwa":
			w = workload.NewFWA(n, *nodes)
		case "gauss", "ge":
			w = workload.NewGauss(n, *nodes)
		case "lu":
			if n == 0 {
				n = 128
			}
			w = workload.NewLU(n, 16, *nodes)
		case "radix":
			if n == 0 {
				n = 1 << 16
			}
			w = workload.NewRadix(n, 4, *nodes)
		default:
			err = fmt.Errorf("unknown kernel %q", *app)
		}
	}
	fail(err)

	m, err := core.New(cfg)
	fail(err)
	d, err := workload.NewDriver(m, w)
	fail(err)
	s, err := d.Run()
	var unroutable *xbar.UnroutableError
	if errors.As(err, &unroutable) {
		// The surviving fabric cannot reach some endpoint: report the
		// partition structurally and exit non-zero — never hang.
		fmt.Fprintf(os.Stderr, "dresar-sim: network partitioned: %v\n", unroutable)
		if r := m.Net.DownReport(); r != "" {
			fmt.Fprint(os.Stderr, r)
		}
		os.Exit(1)
	}
	var stall *core.StallError
	if errors.As(err, &stall) {
		// The watchdog tripped: print the structured stall report and
		// exit non-zero — never hang, never dump a raw panic.
		fmt.Fprintf(os.Stderr, "dresar-sim: liveness watchdog tripped at cycle %d (no progress for %d cycles)\n",
			stall.Now, stall.SinceProgress)
		fmt.Fprint(os.Stderr, stall.Report)
		os.Exit(1)
	}
	fail(err)
	if *check {
		fail(m.CheckInvariants())
	}
	if m.Monitor != nil && m.Quiesced() {
		fail(m.Monitor.AtQuiesce())
	}

	fmt.Printf("app=%s entries=%d nodes=%d policy=%s\n", *app, *entries, *nodes, *policy)
	fmt.Println(s)
	if m.Injector != nil {
		fmt.Println(m.Injector.Stats.String())
		if s.Retransmits > 0 || s.DupRequests > 0 {
			fmt.Printf("recovery: retransmits=%d dupRequestsFiltered=%d\n", s.Retransmits, s.DupRequests)
		}
		if s.Recovered() {
			fmt.Printf("net-recovery: linkRetx=%d reroutes=%d degradedHops=%d sdirEntriesLost=%d homeFallbacks=%d niFallbacks=%d homeRedrives=%d\n",
				s.LinkRetransmits, s.Reroutes, s.DegradedHops,
				s.SDirEntriesLost, s.SDirHomeFallbacks, s.NodeFallbacks, s.HomeRedrives)
		}
	}
	if s.ReadMisses > 0 {
		fmt.Printf("ctocFraction=%.3f switchServedShare=%.3f\n",
			s.CtoCFraction(), float64(s.ReadCtoCSwitch)/float64(maxu(s.CtoC(), 1)))
	}
	fmt.Printf("readLatency: p50<=%d p90<=%d p99<=%d max=%d\n",
		m.ReadLatHist.Percentile(50), m.ReadLatHist.Percentile(90),
		m.ReadLatHist.Percentile(99), m.ReadLatHist.Percentile(100))
}

// runSweep regenerates the paper's figure sweep (every app × switch
// directory size) on a bounded worker pool and prints Figures 8–11.
// Each cell is an isolated single-threaded simulation, so the tables
// are identical whatever the pool width.
func runSweep(scale string, workers int) {
	sc := figures.ScaleSmall
	switch scale {
	case "small":
	case "paper":
		sc = figures.ScalePaper
	default:
		fail(fmt.Errorf("unknown scale %q (want small or paper)", scale))
	}
	sweep, err := figures.SweepN(sc, figures.Apps, figures.DirSizes, workers)
	fail(err)
	fmt.Print(figures.Fig8(sweep))
	fmt.Println()
	fmt.Print(figures.Fig9(sweep))
	fmt.Println()
	fmt.Print(figures.Fig10(sweep))
	fmt.Println()
	fmt.Print(figures.Fig11(sweep))
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dresar-sim: %v\n", err)
		os.Exit(1)
	}
}
