// Command dresar-load drives a dresar-served instance: it submits
// sweep jobs on a bounded concurrency, retries sheds with exponential
// backoff and jitter, and reports submit-to-result latency
// percentiles and throughput. It doubles as the e2e assertion tool:
// -expect-cached fails unless every job was a cache hit, -verify
// compares result payloads byte-for-byte against a golden file, and
// -cancel-after cancels each job mid-run and asserts the typed
// aborted outcome.
//
// It also provides the durability-harness modes: -submit-only records
// accepted job IDs to a file and exits without waiting (the pre-crash
// half of the kill -9 e2e), -wait-ids polls a recorded ID list until
// every job is terminal (the post-restart half), and -soak runs many
// concurrent clients across multiple tenants with random cancellations
// for a wall-clock duration, asserting every accepted job reaches a
// terminal state (sheds and throttles are counted, not failed).
//
// Usage:
//
//	dresar-load -base http://127.0.0.1:8080 [-n 8] [-c 2]
//	            [-apps fft,tc] [-sizes 0,512] [-scale small]
//	            [-deadline-ms 0] [-expect-cached] [-cancel-after 100ms]
//	            [-out result.json] [-verify result.json] [-tenant NAME]
//	dresar-load -submit-only -ids-file ids.txt [-n 8] ...
//	dresar-load -wait-ids ids.txt [-timeout 2m]
//	dresar-load -soak [-duration 10s] [-tenants 4] [-clients 16]
//	            [-cancel-frac 0.1]
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dresar/internal/serve"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "server base URL")
	n := flag.Int("n", 8, "jobs to submit")
	conc := flag.Int("c", 2, "concurrent clients")
	appsStr := flag.String("apps", "fft", "comma-separated workload list")
	sizesStr := flag.String("sizes", "0,512", "comma-separated switch-directory sizes")
	scale := flag.String("scale", "small", "input scale: small or paper")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-job deadline in ms (0 = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall client timeout per job")
	expectCached := flag.Bool("expect-cached", false, "fail unless every job is served from the cache")
	cancelAfter := flag.Duration("cancel-after", 0, "cancel each job this long after submit and expect a typed abort")
	outFile := flag.String("out", "", "write the first result payload to this file")
	verifyFile := flag.String("verify", "", "fail unless every result payload is byte-identical to this file")
	tenant := flag.String("tenant", "", "X-Dresar-Tenant header for every request")
	submitOnly := flag.Bool("submit-only", false, "submit jobs and exit without waiting (crash-harness pre-half)")
	idsFile := flag.String("ids-file", "", "with -submit-only: record accepted job IDs here, one per line")
	waitIDs := flag.String("wait-ids", "", "poll the job IDs in this file until every one is terminal, then exit")
	expectDone := flag.Bool("expect-done", false, "with -wait-ids: additionally require every job to end done, not failed/canceled")
	soak := flag.Bool("soak", false, "run the multi-tenant soak: concurrent clients, mixed tenants, random cancels")
	soakDuration := flag.Duration("duration", 10*time.Second, "with -soak: wall-clock run time")
	soakTenants := flag.Int("tenants", 4, "with -soak: number of distinct tenants")
	soakClients := flag.Int("clients", 16, "with -soak: concurrent client goroutines")
	cancelFrac := flag.Float64("cancel-frac", 0.1, "with -soak: fraction of jobs to cancel mid-flight")
	flag.Parse()

	if *waitIDs != "" {
		os.Exit(runWaitIDs(*base, *waitIDs, *timeout, *expectDone))
	}
	if *soak {
		os.Exit(runSoak(*base, *soakDuration, *soakTenants, *soakClients, *cancelFrac, *timeout))
	}

	var sizes []int
	for _, s := range strings.Split(*sizesStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			die(fmt.Errorf("bad size %q: %v", s, err))
		}
		sizes = append(sizes, v)
	}
	spec := serve.JobSpec{
		Scale:      *scale,
		Apps:       strings.Split(*appsStr, ","),
		Sizes:      sizes,
		DeadlineMS: *deadlineMS,
	}
	if *submitOnly {
		os.Exit(runSubmitOnly(*base, *tenant, spec, *n, *idsFile))
	}
	var golden []byte
	if *verifyFile != "" {
		var err error
		golden, err = os.ReadFile(*verifyFile)
		die(err)
	}

	type outcome struct {
		latency time.Duration
		state   serve.JobState
		cached  bool
		errKind string
		payload []byte
		err     error
	}
	outcomes := make([]outcome, *n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(*conc, 1))
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := &serve.Client{Base: *base, Tenant: *tenant}
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			t0 := time.Now()
			st, err := c.Submit(ctx, spec)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			if *cancelAfter > 0 {
				time.Sleep(*cancelAfter)
				if _, err := c.Cancel(ctx, st.ID); err != nil {
					outcomes[i] = outcome{err: fmt.Errorf("cancel: %w", err)}
					return
				}
			}
			fin, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			o := outcome{latency: time.Since(t0), state: fin.State, cached: fin.Cached}
			if fin.Error != nil {
				o.errKind = fin.Error.Kind
			}
			if fin.State == serve.StateDone {
				payload, err := c.Result(ctx, st.ID)
				if err != nil {
					o.err = fmt.Errorf("result: %w", err)
				} else {
					o.payload = payload
				}
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// Report, then assert.
	var lats []time.Duration
	states := map[serve.JobState]int{}
	kinds := map[string]int{}
	cached := 0
	failed := false
	var firstPayload []byte
	for i, o := range outcomes {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "dresar-load: job %d: %v\n", i, o.err)
			failed = true
			continue
		}
		lats = append(lats, o.latency)
		states[o.state]++
		if o.errKind != "" {
			kinds[o.errKind]++
		}
		if o.cached {
			cached++
		}
		if o.payload != nil && firstPayload == nil {
			firstPayload = o.payload
		}
		if golden != nil && o.payload != nil && !bytes.Equal(o.payload, golden) {
			fmt.Fprintf(os.Stderr, "dresar-load: job %d payload differs from %s\n", i, *verifyFile)
			failed = true
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("jobs=%d ok=%d wall=%s throughput=%.2f jobs/s\n",
		*n, len(lats), wall.Round(time.Millisecond), float64(len(lats))/wall.Seconds())
	fmt.Printf("latency p50=%s p90=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("states=%v errorKinds=%v cached=%d/%d\n", states, kinds, cached, len(lats))

	if *expectCached && cached != len(lats) {
		fmt.Fprintf(os.Stderr, "dresar-load: expected every job cached, got %d/%d\n", cached, len(lats))
		failed = true
	}
	if *cancelAfter > 0 {
		// Every job must have ended in the typed canceled state —
		// not done, not wedged, not an untyped failure. (A job that
		// finished before the cancel landed is reported done; treat
		// that as a test-setup error so the e2e picks a long job.)
		if states[serve.StateCanceled] != len(lats) {
			fmt.Fprintf(os.Stderr, "dresar-load: expected %d canceled jobs, states=%v\n", len(lats), states)
			failed = true
		}
		if kinds["aborted"] != len(lats) {
			fmt.Fprintf(os.Stderr, "dresar-load: expected typed aborted errors, kinds=%v\n", kinds)
			failed = true
		}
	}
	if *outFile != "" && firstPayload != nil {
		die(os.WriteFile(*outFile, firstPayload, 0o644))
	}
	if failed {
		os.Exit(1)
	}
}

// runSubmitOnly submits n jobs and exits without waiting — the
// pre-crash half of the kill -9 harness. Job i's spec appends a
// distinct extra size so every job is unique work (no cache dedupe on
// the first pass) and the recovered server has real re-running to do;
// the stride of 4 keeps every size a valid 4-way directory geometry.
// Accepted IDs are recorded one per line for a later -wait-ids pass.
func runSubmitOnly(base, tenant string, spec serve.JobSpec, n int, idsFile string) int {
	c := &serve.Client{Base: base, Tenant: tenant}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var ids []string
	for i := 0; i < n; i++ {
		s := spec
		s.Sizes = append(append([]int{}, spec.Sizes...), 1024+4*i)
		st, err := c.Submit(ctx, s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dresar-load: submit %d: %v\n", i, err)
			return 1
		}
		ids = append(ids, st.ID)
	}
	fmt.Printf("submitted=%d\n", len(ids))
	if idsFile != "" {
		if err := os.WriteFile(idsFile, []byte(strings.Join(ids, "\n")+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dresar-load:", err)
			return 1
		}
	}
	return 0
}

// runWaitIDs polls every job ID in idsFile until each is terminal —
// the post-restart half of the crash harness. A job the server no
// longer knows, or one still live at the deadline, fails the run:
// accepted work must never be lost or wedged by a crash.
func runWaitIDs(base, idsFile string, timeout time.Duration, expectDone bool) int {
	f, err := os.Open(idsFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-load:", err)
		return 1
	}
	defer f.Close()
	var ids []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if id := strings.TrimSpace(sc.Text()); id != "" {
			ids = append(ids, id)
		}
	}
	c := &serve.Client{Base: base}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	states := map[serve.JobState]int{}
	code := 0
	for _, id := range ids {
		fin, err := c.Wait(ctx, id, 20*time.Millisecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dresar-load: job %s never reached a terminal state: %v\n", id, err)
			code = 1
			continue
		}
		states[fin.State]++
		if expectDone && fin.State != serve.StateDone {
			msg := ""
			if fin.Error != nil {
				msg = fin.Error.Message
			}
			fmt.Fprintf(os.Stderr, "dresar-load: job %s ended %s: %s\n", id, fin.State, msg)
			code = 1
		}
	}
	fmt.Printf("waited=%d states=%v\n", len(ids), states)
	return code
}

// runSoak floods the server from many concurrent clients spread across
// tenants, cancelling a fraction of jobs mid-flight. Sheds (quota /
// overloaded) are expected under pressure and counted, not failed; the
// invariant asserted is that every accepted job reaches a terminal
// state and no request errors out untyped.
func runSoak(base string, dur time.Duration, tenants, clients int, cancelFrac float64, timeout time.Duration) int {
	if tenants < 1 {
		tenants = 1
	}
	pool := []serve.JobSpec{
		{Apps: []string{"fft"}, Sizes: []int{0}},
		{Apps: []string{"fft"}, Sizes: []int{512}},
		{Apps: []string{"tc"}, Sizes: []int{0, 512}},
		{Apps: []string{"fft", "tc"}, Sizes: []int{128}},
	}
	var submitted, terminal, cachedHits, cancels, shed, errs atomic.Int64
	states := make([]map[serve.JobState]int, clients) // per-client, merged at the end
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			st := map[serve.JobState]int{}
			states[i] = st
			c := &serve.Client{
				Base:        base,
				Tenant:      fmt.Sprintf("soak-%d", i%tenants),
				MaxRetries:  1,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  50 * time.Millisecond,
				Rand:        rng,
			}
			for time.Now().Before(deadline) {
				spec := pool[rng.Intn(len(pool))]
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				js, err := c.Submit(ctx, spec)
				if err != nil {
					if je, ok := err.(*serve.JobError); ok &&
						(je.Kind == serve.KindQuota || je.Kind == serve.KindOverloaded || je.Kind == serve.KindDraining) {
						shed.Add(1)
						time.Sleep(time.Duration(rng.Intn(20)+5) * time.Millisecond)
					} else {
						errs.Add(1)
						fmt.Fprintf(os.Stderr, "dresar-load: soak submit: %v\n", err)
					}
					cancel()
					continue
				}
				submitted.Add(1)
				if rng.Float64() < cancelFrac {
					time.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
					if _, err := c.Cancel(ctx, js.ID); err == nil {
						cancels.Add(1)
					}
				}
				fin, err := c.Wait(ctx, js.ID, 10*time.Millisecond)
				if err != nil {
					errs.Add(1)
					fmt.Fprintf(os.Stderr, "dresar-load: soak job %s stuck: %v\n", js.ID, err)
					cancel()
					continue
				}
				terminal.Add(1)
				st[fin.State]++
				if fin.Cached {
					cachedHits.Add(1)
				}
				cancel()
			}
		}(i)
	}
	wg.Wait()
	merged := map[serve.JobState]int{}
	for _, st := range states {
		for k, v := range st {
			merged[k] += v
		}
	}
	fmt.Printf("soak: submitted=%d terminal=%d states=%v cached=%d cancels=%d shed=%d errs=%d\n",
		submitted.Load(), terminal.Load(), merged, cachedHits.Load(), cancels.Load(), shed.Load(), errs.Load())
	if errs.Load() > 0 || terminal.Load() != submitted.Load() {
		fmt.Fprintf(os.Stderr, "dresar-load: soak failed: %d errors, %d/%d jobs terminal\n",
			errs.Load(), terminal.Load(), submitted.Load())
		return 1
	}
	if submitted.Load() == 0 {
		fmt.Fprintln(os.Stderr, "dresar-load: soak submitted nothing (all shed?)")
		return 1
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-load:", err)
		os.Exit(1)
	}
}
