// Command dresar-load drives a dresar-served instance: it submits
// sweep jobs on a bounded concurrency, retries sheds with exponential
// backoff and jitter, and reports submit-to-result latency
// percentiles and throughput. It doubles as the e2e assertion tool:
// -expect-cached fails unless every job was a cache hit, -verify
// compares result payloads byte-for-byte against a golden file, and
// -cancel-after cancels each job mid-run and asserts the typed
// aborted outcome.
//
// Usage:
//
//	dresar-load -base http://127.0.0.1:8080 [-n 8] [-c 2]
//	            [-apps fft,tc] [-sizes 0,512] [-scale small]
//	            [-deadline-ms 0] [-expect-cached] [-cancel-after 100ms]
//	            [-out result.json] [-verify result.json]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dresar/internal/serve"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:8080", "server base URL")
	n := flag.Int("n", 8, "jobs to submit")
	conc := flag.Int("c", 2, "concurrent clients")
	appsStr := flag.String("apps", "fft", "comma-separated workload list")
	sizesStr := flag.String("sizes", "0,512", "comma-separated switch-directory sizes")
	scale := flag.String("scale", "small", "input scale: small or paper")
	deadlineMS := flag.Int64("deadline-ms", 0, "per-job deadline in ms (0 = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall client timeout per job")
	expectCached := flag.Bool("expect-cached", false, "fail unless every job is served from the cache")
	cancelAfter := flag.Duration("cancel-after", 0, "cancel each job this long after submit and expect a typed abort")
	outFile := flag.String("out", "", "write the first result payload to this file")
	verifyFile := flag.String("verify", "", "fail unless every result payload is byte-identical to this file")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesStr, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			die(fmt.Errorf("bad size %q: %v", s, err))
		}
		sizes = append(sizes, v)
	}
	spec := serve.JobSpec{
		Scale:      *scale,
		Apps:       strings.Split(*appsStr, ","),
		Sizes:      sizes,
		DeadlineMS: *deadlineMS,
	}
	var golden []byte
	if *verifyFile != "" {
		var err error
		golden, err = os.ReadFile(*verifyFile)
		die(err)
	}

	type outcome struct {
		latency time.Duration
		state   serve.JobState
		cached  bool
		errKind string
		payload []byte
		err     error
	}
	outcomes := make([]outcome, *n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(*conc, 1))
	start := time.Now()
	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := &serve.Client{Base: *base}
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			t0 := time.Now()
			st, err := c.Submit(ctx, spec)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			if *cancelAfter > 0 {
				time.Sleep(*cancelAfter)
				if _, err := c.Cancel(ctx, st.ID); err != nil {
					outcomes[i] = outcome{err: fmt.Errorf("cancel: %w", err)}
					return
				}
			}
			fin, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			o := outcome{latency: time.Since(t0), state: fin.State, cached: fin.Cached}
			if fin.Error != nil {
				o.errKind = fin.Error.Kind
			}
			if fin.State == serve.StateDone {
				payload, err := c.Result(ctx, st.ID)
				if err != nil {
					o.err = fmt.Errorf("result: %w", err)
				} else {
					o.payload = payload
				}
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	// Report, then assert.
	var lats []time.Duration
	states := map[serve.JobState]int{}
	kinds := map[string]int{}
	cached := 0
	failed := false
	var firstPayload []byte
	for i, o := range outcomes {
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "dresar-load: job %d: %v\n", i, o.err)
			failed = true
			continue
		}
		lats = append(lats, o.latency)
		states[o.state]++
		if o.errKind != "" {
			kinds[o.errKind]++
		}
		if o.cached {
			cached++
		}
		if o.payload != nil && firstPayload == nil {
			firstPayload = o.payload
		}
		if golden != nil && o.payload != nil && !bytes.Equal(o.payload, golden) {
			fmt.Fprintf(os.Stderr, "dresar-load: job %d payload differs from %s\n", i, *verifyFile)
			failed = true
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	fmt.Printf("jobs=%d ok=%d wall=%s throughput=%.2f jobs/s\n",
		*n, len(lats), wall.Round(time.Millisecond), float64(len(lats))/wall.Seconds())
	fmt.Printf("latency p50=%s p90=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("states=%v errorKinds=%v cached=%d/%d\n", states, kinds, cached, len(lats))

	if *expectCached && cached != len(lats) {
		fmt.Fprintf(os.Stderr, "dresar-load: expected every job cached, got %d/%d\n", cached, len(lats))
		failed = true
	}
	if *cancelAfter > 0 {
		// Every job must have ended in the typed canceled state —
		// not done, not wedged, not an untyped failure. (A job that
		// finished before the cancel landed is reported done; treat
		// that as a test-setup error so the e2e picks a long job.)
		if states[serve.StateCanceled] != len(lats) {
			fmt.Fprintf(os.Stderr, "dresar-load: expected %d canceled jobs, states=%v\n", len(lats), states)
			failed = true
		}
		if kinds["aborted"] != len(lats) {
			fmt.Fprintf(os.Stderr, "dresar-load: expected typed aborted errors, kinds=%v\n", kinds)
			failed = true
		}
	}
	if *outFile != "" && firstPayload != nil {
		die(os.WriteFile(*outFile, firstPayload, 0o644))
	}
	if failed {
		os.Exit(1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dresar-load:", err)
		os.Exit(1)
	}
}
