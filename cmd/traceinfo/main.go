// Command traceinfo summarizes a memory trace file: per-processor
// reference counts, load/store mix, distinct blocks and pages, and the
// block-popularity skew — the statistics the paper's Section 2 trace
// analysis reports.
//
// Usage:
//
//	traceinfo -in tpcc.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"dresar/internal/trace"
)

func main() {
	in := flag.String("in", "", "trace file (required)")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "traceinfo: -in required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	fail(err)
	defer f.Close()

	r := trace.NewReader(f)
	var refs, stores uint64
	perProc := map[uint8]uint64{}
	blockRefs := map[uint64]uint64{}
	pages := map[uint64]bool{}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		// Anything else is a malformed or truncated file: exit
		// non-zero rather than summarizing a partial trace.
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s (after %d records): %v\n", *in, refs, err)
			os.Exit(1)
		}
		refs++
		if rec.Op == trace.Store {
			stores++
		}
		perProc[rec.Pid]++
		blockRefs[rec.Addr&^31]++
		pages[rec.Addr/4096] = true
	}
	if refs == 0 {
		fmt.Fprintf(os.Stderr, "traceinfo: %s: empty trace\n", *in)
		os.Exit(1)
	}

	fmt.Printf("references: %d (%.1f%% stores)\n", refs, pct(stores, refs))
	fmt.Printf("processors: %d\n", len(perProc))
	fmt.Printf("distinct 32B blocks: %d\n", len(blockRefs))
	fmt.Printf("distinct 4KB pages:  %d\n", len(pages))

	// Popularity skew: cumulative reference share of the hottest
	// blocks (the Figure 2 construction over raw references).
	counts := make([]uint64, 0, len(blockRefs))
	for _, c := range blockRefs {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var cum uint64
	idx := 0
	fmt.Println("block popularity (cumulative reference share):")
	for _, p := range []float64{0.01, 0.10, 0.50} {
		upto := int(p * float64(len(counts)))
		for ; idx < upto; idx++ {
			cum += counts[idx]
		}
		fmt.Printf("  top %4.0f%% of blocks: %5.1f%% of references\n", p*100, pct(cum, refs))
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
		os.Exit(1)
	}
}
