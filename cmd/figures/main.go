// Command figures regenerates the paper's result figures (1, 2, 8, 9,
// 10, 11) and prints the corresponding tables.
//
// Usage:
//
//	figures [-fig N] [-scale small|paper] [-apps fft,tc,...] [-sizes 0,256,...]
//
// With no -fig, every figure is produced. Figures 8–11 share one
// (app × directory-size) sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dresar/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (1,2,8,9,10,11; 12 = extension E1); 0 = all paper figures")
	scaleStr := flag.String("scale", "small", "input scale: small or paper (Table 2/3 sizes)")
	appsStr := flag.String("apps", strings.Join(figures.Apps, ","), "comma-separated workload list")
	sizesStr := flag.String("sizes", "0,256,512,1024,2048", "switch-directory sizes (0 = base)")
	csvOut := flag.String("csv", "", "also write the raw sweep (and Fig 2 CDF) as CSV to this file prefix")
	shardWorkers := flag.Int("shard-workers", 0, "intra-run shard count per cell (0 = serial unless DRESAR_ENGINE=sharded; figure values are identical at any width)")
	flag.Parse()
	figures.ShardWorkers = *shardWorkers

	var scale figures.Scale
	switch *scaleStr {
	case "small":
		scale = figures.ScaleSmall
	case "paper":
		scale = figures.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "figures: unknown scale %q\n", *scaleStr)
		os.Exit(2)
	}
	apps := strings.Split(*appsStr, ",")
	var sizes []int
	for _, s := range strings.Split(*sizesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: bad size %q: %v\n", s, err)
			os.Exit(2)
		}
		sizes = append(sizes, n)
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	if want(1) {
		text, _, err := figures.Fig1(scale)
		die(err)
		fmt.Println(text)
	}
	if want(2) {
		text, rows, err := figures.Fig2(scale)
		die(err)
		fmt.Println(text)
		if *csvOut != "" {
			die(os.WriteFile(*csvOut+"_fig2.csv", []byte(figures.Fig2CSV(rows)), 0o644))
		}
	}
	if want(8) || want(9) || want(10) || want(11) {
		sweep, err := figures.Sweep(scale, apps, sizes)
		die(err)
		if *csvOut != "" {
			die(os.WriteFile(*csvOut+"_sweep.csv", []byte(figures.SweepCSV(sweep)), 0o644))
		}
		if want(8) {
			fmt.Println(figures.Fig8(sweep))
		}
		if want(9) {
			fmt.Println(figures.Fig9(sweep))
		}
		if want(10) {
			fmt.Println(figures.Fig10(sweep))
		}
		if want(11) {
			fmt.Println(figures.Fig11(sweep))
		}
	}
	if *fig == 12 {
		text, err := figures.FigE1(scale)
		die(err)
		fmt.Println(text)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}
