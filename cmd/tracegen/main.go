// Command tracegen writes a synthetic commercial-workload memory
// trace (TPC-C-like or TPC-D-like) in the repository's binary trace
// format, standing in for the paper's proprietary COMPASS traces.
//
// Usage:
//
//	tracegen -workload tpcc -refs 16000000 -o tpcc.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dresar/internal/trace"
)

func main() {
	kind := flag.String("workload", "tpcc", "tpcc or tpcd")
	refs := flag.Uint64("refs", 16_000_000, "references to generate")
	out := flag.String("o", "", "output file (default <workload>.trace)")
	flag.Parse()

	if *refs == 0 {
		fmt.Fprintln(os.Stderr, "tracegen: -refs must be positive")
		os.Exit(2)
	}
	var cfg trace.SynthConfig
	switch *kind {
	case "tpcc":
		cfg = trace.TPCC(*refs)
	case "tpcd":
		cfg = trace.TPCD(*refs)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q\n", *kind)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *kind + ".trace"
	}
	f, err := os.Create(path)
	fail(err)
	w := trace.NewWriter(f)
	src := trace.NewSynth(cfg)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		fail(w.Write(rec))
	}
	fail(w.Flush())
	// Close explicitly: a deferred close would swallow the write
	// error that tells us the trace on disk is truncated.
	fail(f.Close())
	fmt.Printf("wrote %d records to %s\n", w.Count(), path)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
