// Command dresar-trace runs the trace-driven simulator (Table 3 model)
// on a trace file produced by tracegen, or on a freshly generated
// synthetic trace, and prints the statistics roll-up.
//
// Usage:
//
//	dresar-trace -workload tpcc -refs 16000000 -entries 1024
//	dresar-trace -in tpcc.trace -entries 0
package main

import (
	"flag"
	"fmt"
	"os"

	"dresar/internal/trace"
	"dresar/internal/tracesim"
)

func main() {
	in := flag.String("in", "", "trace file (empty = generate synthetically)")
	kind := flag.String("workload", "tpcc", "tpcc or tpcd (for synthetic generation)")
	refs := flag.Uint64("refs", 16_000_000, "references (synthetic generation)")
	entries := flag.Int("entries", 1024, "switch-directory entries per switch (0 = base)")
	flag.Parse()

	cfg := tracesim.DefaultConfig()
	if *entries > 0 {
		cfg = cfg.WithSDir(*entries)
	}
	s, err := tracesim.New(cfg)
	fail(err)

	var src trace.Source
	var fileSrc *trace.ReaderSource
	if *in != "" {
		f, err := os.Open(*in)
		fail(err)
		defer f.Close()
		fileSrc = &trace.ReaderSource{R: trace.NewReader(f)}
		src = fileSrc
	} else {
		switch *kind {
		case "tpcc":
			src = trace.NewSynth(trace.TPCC(*refs))
		case "tpcd":
			src = trace.NewSynth(trace.TPCD(*refs))
		default:
			fmt.Fprintf(os.Stderr, "dresar-trace: unknown workload %q\n", *kind)
			os.Exit(2)
		}
	}

	st := s.Run(src)
	if fileSrc != nil {
		// A malformed/truncated trace stops the stream early; report
		// it instead of printing stats for a partial run.
		fail(fileSrc.Err())
		if st.Refs == 0 {
			fail(fmt.Errorf("%s: empty trace", *in))
		}
	}
	fmt.Printf("refs=%d reads=%d misses=%d hits=%d\n", st.Refs, st.Reads, st.ReadMisses, st.ReadHits)
	fmt.Printf("clean=%d ctocHome=%d ctocSwitch=%d stale=%d ctocFraction=%.3f\n",
		st.Clean, st.CtoCHome, st.CtoCSwitch, st.StaleSDir, st.CtoCFraction())
	fmt.Printf("avgReadLatency=%.1f readStall=%d execCycles=%d\n",
		st.AvgReadLatency(), st.ReadStall, st.ExecCycles)
	miss, ctoc := s.Profile.CDF([]float64{0.10})
	fmt.Printf("top10%%Blocks: misses=%.1f%% ctocs=%.1f%% (blocks=%d)\n",
		100*miss[0], 100*ctoc[0], s.Profile.Len())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "dresar-trace: %v\n", err)
		os.Exit(1)
	}
}
