// OLTP runs the paper's commercial-workload methodology end to end:
// generate a synthetic TPC-C-like trace (the stand-in for the IBM
// COMPASS traces), feed it to the trace-driven simulator with the
// Table 3 constant-latency model, and compare the base interconnect
// against switch directories — including the Figure 2 block-skew
// analysis that motivates the whole idea.
package main

import (
	"flag"
	"fmt"
	"log"

	"dresar"
)

func main() {
	refs := flag.Uint64("refs", 4_000_000, "trace length in references")
	workload := flag.String("workload", "tpcc", "tpcc or tpcd")
	entries := flag.Int("entries", 1024, "switch-directory entries")
	flag.Parse()

	mkTrace := func() dresar.TraceSource {
		if *workload == "tpcd" {
			return dresar.NewTPCDTrace(*refs)
		}
		return dresar.NewTPCCTrace(*refs)
	}

	base, err := dresar.NewTraceSim(dresar.DefaultTraceConfig())
	if err != nil {
		log.Fatal(err)
	}
	bst := base.Run(mkTrace())

	sd, err := dresar.NewTraceSim(dresar.DefaultTraceConfig().WithSDir(*entries))
	if err != nil {
		log.Fatal(err)
	}
	sst := sd.Run(mkTrace())

	fmt.Printf("%s, %d refs, 16 processors, 2MB caches (Table 3 latencies)\n\n", *workload, *refs)
	fmt.Printf("read misses: %d, of which %.1f%% required cache-to-cache transfers\n",
		bst.ReadMisses, 100*bst.CtoCFraction())
	miss, ctoc := base.Profile.CDF([]float64{0.10})
	fmt.Printf("block skew (Figure 2): top 10%% of blocks carry %.1f%% of misses and %.1f%% of CtoCs\n\n",
		100*miss[0], 100*ctoc[0])

	fmt.Printf("%-30s %12s %12s\n", "", "base", fmt.Sprintf("sdir(%d)", *entries))
	fmt.Printf("%-30s %12d %12d\n", "CtoC via home node", bst.CtoCHome, sst.CtoCHome)
	fmt.Printf("%-30s %12d %12d\n", "CtoC via switch directory", bst.CtoCSwitch, sst.CtoCSwitch)
	fmt.Printf("%-30s %12.1f %12.1f\n", "avg read latency (cycles)", bst.AvgReadLatency(), sst.AvgReadLatency())
	fmt.Printf("%-30s %12d %12d\n", "execution time (cycles)", bst.ExecCycles, sst.ExecCycles)
	fmt.Printf("\nhome-node CtoC reduction:  %.1f%%\n", 100*(1-float64(sst.CtoCHome)/float64(bst.CtoCHome)))
	fmt.Printf("read latency reduction:    %.1f%%\n", 100*(1-sst.AvgReadLatency()/bst.AvgReadLatency()))
	fmt.Printf("execution time reduction:  %.1f%%\n", 100*(1-float64(sst.ExecCycles)/float64(bst.ExecCycles)))
}
