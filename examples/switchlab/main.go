// Switchlab drives the cycle-accurate flit-level DRESAR switch
// (internal/flit) directly, printing what happens cycle by cycle:
// arbitration, wormhole locks, directory snoops, sinks, and link
// serialization. It is the hardware model of Section 4 made visible —
// useful for understanding why a read request can be consumed inside
// the interconnect.
package main

import (
	"fmt"

	"dresar/internal/flit"
	"dresar/internal/mesg"
)

func main() {
	// A 4x4 switch with a 2-port directory that sinks read requests to
	// block 0x40 (pretending the directory holds it MODIFIED at P3).
	sw := flit.MustNew(flit.Config{
		Ports:      4,
		SnoopPorts: 2,
		Snoop: func(m *mesg.Message) flit.Verdict {
			sink := m.Kind == mesg.ReadReq && m.Addr == 0x40
			fmt.Printf("        snoop: %v -> sink=%v\n", m, sink)
			return flit.Verdict{Sink: sink}
		},
	})

	// Three messages arrive together:
	//  1. a read request to 0x40 (will be sunk and re-routed in a real
	//     fabric — here we just watch the sink),
	//  2. a read request to 0x80 (passes),
	//  3. a 5-flit data reply contending for the same output as (2).
	msgs := []struct {
		m   *mesg.Message
		in  int
		out int
	}{
		{&mesg.Message{ID: 1, Kind: mesg.ReadReq, Addr: 0x40, Src: mesg.P(0), Dst: mesg.M(3)}, 0, 2},
		{&mesg.Message{ID: 2, Kind: mesg.ReadReq, Addr: 0x80, Src: mesg.P(1), Dst: mesg.M(3)}, 1, 2},
		{&mesg.Message{ID: 3, Kind: mesg.ReadReply, Addr: 0xC0, Src: mesg.M(2), Dst: mesg.P(0), Data: 7}, 2, 2},
	}
	type feed struct {
		fs []flit.Flit
		in int
	}
	var feeds []feed
	for _, x := range msgs {
		feeds = append(feeds, feed{flit.Packetize(x.m, 0, x.out), x.in})
	}

	fmt.Println("cycle-by-cycle trace of one 4x4 DRESAR switch:")
	for cycle := 1; cycle <= 60; cycle++ {
		// Feed one flit per input per cycle while any remain.
		for i := range feeds {
			if len(feeds[i].fs) > 0 && sw.Offer(feeds[i].in, 0, feeds[i].fs[0]) {
				f := feeds[i].fs[0]
				feeds[i].fs = feeds[i].fs[1:]
				tag := ""
				if f.Head {
					tag = " (head)"
				} else if f.Tail {
					tag = " (tail)"
				}
				fmt.Printf("%6d  in[%d] <- msg %d flit%s\n", cycle, feeds[i].in, f.MsgID, tag)
			}
		}
		sw.Tick()
		for o := 0; o < 4; o++ {
			for _, f := range sw.Collect(o) {
				tag := ""
				if f.Head {
					tag = " (head)"
				} else if f.Tail {
					tag = " (tail)"
				}
				fmt.Printf("%6d  out[%d] -> msg %d flit%s\n", cycle, o, f.MsgID, tag)
			}
		}
		if sw.Idle() && len(feeds[0].fs)+len(feeds[1].fs)+len(feeds[2].fs) == 0 {
			fmt.Printf("drained at cycle %d\n", cycle)
			break
		}
	}
	fmt.Printf("\nstats: %+v\n", sw.Stats)
	fmt.Println("note: msg 1 was sunk by the switch directory (it never")
	fmt.Println("appears on an output); msgs 2 and 3 serialized their flits")
	fmt.Println("over the contended output 2 without interleaving (wormhole).")
}
