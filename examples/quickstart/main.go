// Quickstart: build the paper's 16-node CC-NUMA machine twice — once
// as the base system and once with 1K-entry DRESAR switch directories
// in every crossbar switch — run the FFT kernel on both, and compare
// how dirty read misses were serviced.
package main

import (
	"fmt"
	"log"

	"dresar"
)

func run(withSwitchDirs bool) dresar.Stats {
	cfg := dresar.DefaultConfig() // Table 2: 16 nodes, 8x8 switches, MSI, full-map
	if withSwitchDirs {
		cfg = cfg.WithSwitchDir(1024) // 1K entries, 4-way, retry policy
	}
	m, err := dresar.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// A 4096-point six-step FFT: transposes read matrix rows that other
	// processors just wrote, so most misses are dirty (cache-to-cache).
	d, err := dresar.NewDriver(m, dresar.NewFFT(4096, 16))
	if err != nil {
		log.Fatal(err)
	}
	s, err := d.Run()
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func main() {
	base := run(false)
	sd := run(true)

	fmt.Println("FFT (4096 points) on 16 nodes")
	fmt.Printf("%-28s %12s %12s\n", "", "base", "switch-dir")
	fmt.Printf("%-28s %12d %12d\n", "read misses", base.ReadMisses, sd.ReadMisses)
	fmt.Printf("%-28s %12d %12d\n", "  clean (from memory)", base.ReadClean, sd.ReadClean)
	fmt.Printf("%-28s %12d %12d\n", "  CtoC via home node", base.ReadCtoCHome, sd.ReadCtoCHome)
	fmt.Printf("%-28s %12d %12d\n", "  CtoC via switch dir", base.ReadCtoCSwitch, sd.ReadCtoCSwitch)
	fmt.Printf("%-28s %12.1f %12.1f\n", "avg read latency (cycles)", base.AvgReadLatency(), sd.AvgReadLatency())
	fmt.Printf("%-28s %12d %12d\n", "execution time (cycles)", base.Cycles, sd.Cycles)
	fmt.Printf("\nhome-node CtoC reduction: %.1f%%\n",
		100*(1-float64(sd.ReadCtoCHome)/float64(base.ReadCtoCHome)))
	fmt.Printf("execution time reduction: %.1f%%\n",
		100*(1-float64(sd.Cycles)/float64(base.Cycles)))
}
