// Dirsweep reproduces the core of the paper's Figures 8–11 for one
// scientific kernel: sweep the switch-directory size from 256 to 2048
// entries and report home-node CtoC transfers, average read latency,
// read stall time and execution time, each normalized to the base
// system. The knee around 1K entries — the paper's headline sizing
// result — is visible directly.
package main

import (
	"flag"
	"fmt"
	"log"

	"dresar"
)

func main() {
	app := flag.String("app", "sor", "kernel: fft, tc, sor, fwa, gauss")
	size := flag.Int("size", 128, "input size (matrix/grid dimension; points for fft)")
	flag.Parse()

	mk := func() dresar.Workload {
		switch *app {
		case "fft":
			return dresar.NewFFT(*size, 16)
		case "tc":
			return dresar.NewTC(*size, 16)
		case "sor":
			return dresar.NewSOR(*size, 4, 16)
		case "fwa":
			return dresar.NewFWA(*size, 16)
		case "gauss":
			return dresar.NewGauss(*size, 16)
		}
		log.Fatalf("unknown kernel %q", *app)
		return nil
	}

	type row struct {
		entries                 int
		homeCtoC, stall, cycles uint64
		lat                     float64
	}
	var rows []row
	for _, entries := range []int{0, 256, 512, 1024, 2048} {
		cfg := dresar.DefaultConfig()
		if entries > 0 {
			cfg = cfg.WithSwitchDir(entries)
		}
		m, err := dresar.NewMachine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		d, err := dresar.NewDriver(m, mk())
		if err != nil {
			log.Fatal(err)
		}
		s, err := d.Run()
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{entries, s.ReadCtoCHome, uint64(s.ReadStall), uint64(s.Cycles), s.AvgReadLatency()})
	}

	base := rows[0]
	fmt.Printf("%s (n=%d), 16 nodes — normalized to base\n", *app, *size)
	fmt.Printf("%8s %12s %12s %12s %12s\n", "entries", "homeCtoC", "readLat", "readStall", "execTime")
	for _, r := range rows {
		name := fmt.Sprint(r.entries)
		if r.entries == 0 {
			name = "base"
		}
		fmt.Printf("%8s %12.3f %12.3f %12.3f %12.3f\n", name,
			norm(r.homeCtoC, base.homeCtoC), r.lat/base.lat,
			norm(r.stall, base.stall), norm(r.cycles, base.cycles))
	}
}

func norm(v, base uint64) float64 {
	if base == 0 {
		return 1
	}
	return float64(v) / float64(base)
}
