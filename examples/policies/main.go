// Policies explores the DRESAR design space on a contended producer-
// consumer workload: the paper's retry policy vs the bit-vector
// alternative for reads that hit TRANSIENT entries, the pending buffer
// of the 8×8 switch design, and directory placement (both stages vs
// top-only vs leaf-only). It demonstrates the lower-level public API:
// issuing individual reads and writes against a Machine.
package main

import (
	"fmt"
	"log"

	"dresar"
	"dresar/internal/core"
	"dresar/internal/sdir"
	"dresar/internal/sim"
)

// contended drives a producer-consumer pattern with bursts of readers
// racing for just-written blocks — the pattern that exercises the
// TRANSIENT state: the first read is intercepted, the rest arrive
// while the transfer is in flight.
func contended(m *dresar.Machine) dresar.Stats {
	const blocks = 32
	const rounds = 120
	var issue func(p, r int)
	issue = func(p, r int) {
		if r == 0 {
			return
		}
		addr := uint64((r*7+p)%blocks) * 32 * 131
		if p%4 == 0 {
			m.Write(p, addr, func(sim.Cycle) { issue(p, r-1) })
		} else {
			m.Read(p, addr, func(sim.Cycle) { issue(p, r-1) })
		}
	}
	for p := 0; p < 16; p++ {
		issue(p, rounds)
	}
	if err := m.Run(1 << 34); err != nil {
		log.Fatal(err)
	}
	return m.Collect()
}

func build(mod func(*core.Config)) *dresar.Machine {
	cfg := dresar.DefaultConfig().WithSwitchDir(1024)
	if mod != nil {
		mod(&cfg)
	}
	m, err := dresar.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	fmt.Println("DRESAR design space on a contended producer-consumer workload")
	fmt.Printf("%-26s %10s %10s %10s %10s\n", "configuration", "swServed", "homeCtoC", "retries", "exec")

	show := func(name string, s dresar.Stats) {
		fmt.Printf("%-26s %10d %10d %10d %10d\n", name, s.ReadCtoCSwitch, s.ReadCtoCHome, s.Retries, s.Cycles)
	}

	show("retry policy (paper)", contended(build(nil)))
	show("bit-vector policy", contended(build(func(c *core.Config) {
		c.SwitchDir.Policy = sdir.PolicyBitVector
	})))
	show("8x8 pending buffer (16)", contended(build(func(c *core.Config) {
		c.SwitchDir.PendingEntries = 16
	})))
	show("top stage only", contended(build(func(c *core.Config) {
		c.SwitchDir.StageMask = 1 << 1
	})))
	show("leaf stage only", contended(build(func(c *core.Config) {
		c.SwitchDir.StageMask = 1 << 0
	})))
	show("base (no switch dirs)", contended(func() *dresar.Machine {
		m, err := dresar.NewMachine(dresar.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		return m
	}()))
}
