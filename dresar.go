// Package dresar is a from-scratch reproduction of "Using Switch
// Directories to Speed Up Cache-to-Cache Transfers in CC-NUMA
// Multiprocessors" (Iyer, Bhuyan, Nanda — IPPS 2000): a CC-NUMA
// multiprocessor simulator whose two-stage bidirectional MIN can embed
// a small SRAM directory cache (a *switch directory*, DRESAR) in every
// crossbar switch. Switch directories capture ownership information
// from passing write replies and re-route subsequent read requests
// straight to the owning cache, skipping the home node's slow DRAM
// directory, its controller occupancy, and the extra network hops.
//
// The package is a thin facade over the implementation packages:
//
//   - NewMachine builds the execution-driven machine (caches, full-map
//     home directories, wormhole BMIN, optional DRESAR fabric);
//   - the five scientific kernels of the paper's evaluation (FFT, TC,
//     SOR, FWA, GAUSS) are constructed here and executed by NewDriver;
//   - NewTraceSim builds the trace-driven simulator with the paper's
//     constant-latency model (Table 3), fed by synthetic TPC-C/TPC-D
//     traces from NewTPCCTrace/NewTPCDTrace.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every figure.
package dresar

import (
	"dresar/internal/core"
	"dresar/internal/trace"
	"dresar/internal/tracesim"
	"dresar/internal/workload"
)

// Execution-driven machine (Table 2 system).
type (
	// Config describes an execution-driven machine.
	Config = core.Config
	// Machine is one simulated CC-NUMA system.
	Machine = core.Machine
	// Stats is the machine-wide statistics roll-up.
	Stats = core.Stats
)

// DefaultConfig returns the paper's 16-node Table 2 configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewMachine builds a machine. Use cfg.WithSwitchDir(entries) to embed
// DRESAR switch directories of the given size in every switch.
func NewMachine(cfg Config) (*Machine, error) { return core.New(cfg) }

// Workloads.
type (
	// Workload is a barrier-phase shared-memory reference generator.
	Workload = workload.Workload
	// Driver executes a Workload on a Machine.
	Driver = workload.Driver
)

// NewDriver wires a workload onto a machine.
func NewDriver(m *Machine, w Workload) (*Driver, error) { return workload.NewDriver(m, w) }

// NewFFT builds the n-point six-step FFT for nprocs processors.
func NewFFT(n, nprocs int) Workload { return workload.NewFFT(n, nprocs) }

// NewSOR builds red-black SOR on a g×g grid for iters iterations.
func NewSOR(g, iters, nprocs int) Workload { return workload.NewSOR(g, iters, nprocs) }

// NewTC builds Warshall's transitive closure on an n×n matrix.
func NewTC(n, nprocs int) Workload { return workload.NewTC(n, nprocs) }

// NewFWA builds Floyd-Warshall all-pairs shortest paths on n×n.
func NewFWA(n, nprocs int) Workload { return workload.NewFWA(n, nprocs) }

// NewGauss builds Gaussian elimination on an n×n matrix.
func NewGauss(n, nprocs int) Workload { return workload.NewGauss(n, nprocs) }

// NewLU builds blocked LU decomposition (extension kernel, not part of
// the paper's evaluation) on an n×n matrix with b×b blocks.
func NewLU(n, b, nprocs int) Workload { return workload.NewLU(n, b, nprocs) }

// NewRadix builds the radix-sort permutation passes (extension
// kernel): all-to-all scattered writes stressing ownership transfers.
// keys must be a power of two.
func NewRadix(keys, passes, nprocs int) Workload { return workload.NewRadix(keys, passes, nprocs) }

// WorkloadByName builds a paper-sized kernel ("fft", "tc", "sor",
// "fwa", "gauss") for nprocs processors.
func WorkloadByName(name string, nprocs int) (Workload, error) {
	return workload.ByName(name, nprocs)
}

// Trace-driven simulation (Table 3 model).
type (
	// TraceConfig mirrors Table 3.
	TraceConfig = tracesim.Config
	// TraceSim is the trace-driven simulator.
	TraceSim = tracesim.Sim
	// TraceStats is its statistics roll-up.
	TraceStats = tracesim.Stats
	// TraceRec is one trace record.
	TraceRec = trace.Rec
	// TraceSource yields trace records.
	TraceSource = trace.Source
)

// DefaultTraceConfig returns Table 3's parameters.
func DefaultTraceConfig() TraceConfig { return tracesim.DefaultConfig() }

// NewTraceSim builds a trace-driven simulator. Use
// cfg.WithSDir(entries) for the switch-directory interconnect.
func NewTraceSim(cfg TraceConfig) (*TraceSim, error) { return tracesim.New(cfg) }

// NewTPCCTrace returns a synthetic TPC-C-like trace source of the
// given length, calibrated to the paper's published statistics.
func NewTPCCTrace(refs uint64) TraceSource { return trace.NewSynth(trace.TPCC(refs)) }

// NewTPCDTrace returns a synthetic TPC-D-like trace source.
func NewTPCDTrace(refs uint64) TraceSource { return trace.NewSynth(trace.TPCD(refs)) }
